module Id = Hashid.Id

type hop = { from_node : int; to_node : int; latency : float }

type result = {
  origin : int;
  key : Hashid.Id.t;
  destination : int;
  hops : hop list;
  hop_count : int;
  latency : float;
}

(* Greedy walk shared by both entry points. [record] accumulates hops. *)
let walk net ~origin ~key ~record =
  let sp = Network.space net in
  let n = Network.size net in
  let id_of i = Network.id net i in
  (* the originator knows its predecessor: if it owns the key, 0 hops *)
  if Id.in_oc key ~lo:(id_of (Network.predecessor net origin)) ~hi:(id_of origin) then origin
  else begin
    let current = ref origin in
    let steps = ref 0 in
    let guard = 4 * (Id.bits sp + n) in
    let finished = ref false in
    while not !finished do
      incr steps;
      if !steps > guard then failwith "Chord.Lookup: routing did not terminate";
      let cur = !current in
      let succ = Network.successor net cur in
      if Id.in_oc key ~lo:(id_of cur) ~hi:(id_of succ) then begin
        (* the successor owns the key: final hop *)
        record cur succ;
        current := succ;
        finished := true
      end
      else begin
        let f = Network.closest_preceding_finger net cur ~key in
        let next = if f >= 0 && f <> cur then f else succ in
        record cur next;
        current := next
      end
    done;
    !current
  end

let route ?(trace = Obs.Trace.disabled) net lat ~origin ~key =
  let traced = Obs.Trace.enabled trace in
  let lid =
    if traced then Obs.Trace.start trace ~algo:"chord" ~origin ~key:(Id.to_hex key) else 0
  in
  let hops = ref [] in
  let total = ref 0.0 in
  let count = ref 0 in
  let record from_node to_node =
    let l = Topology.Latency.host_latency lat (Network.host net from_node) (Network.host net to_node) in
    if traced then
      Obs.Trace.hop trace ~lookup:lid ~seq:!count ~layer:1 ~from_node ~to_node ~latency_ms:l;
    hops := { from_node; to_node; latency = l } :: !hops;
    total := !total +. l;
    incr count
  in
  let destination = walk net ~origin ~key ~record in
  if traced then
    Obs.Trace.finish trace ~lookup:lid ~destination ~hops:!count ~latency_ms:!total
      ~finished_at_layer:1;
  { origin; key; destination; hops = List.rev !hops; hop_count = !count; latency = !total }

let route_hops_only net ~origin ~key =
  let count = ref 0 in
  let record _ _ = incr count in
  let destination = walk net ~origin ~key ~record in
  (!count, destination)

(* ---- failure-aware routing --------------------------------------------- *)

type policy = {
  rpc_timeout_ms : float;
  max_retries : int;
  backoff_base_ms : float;
  backoff_mult : float;
  succ_window : int;
}

let default_policy =
  { rpc_timeout_ms = 500.0; max_retries = 2; backoff_base_ms = 50.0; backoff_mult = 2.0; succ_window = 8 }

let check_policy p =
  if
    p.rpc_timeout_ms <= 0.0 || p.max_retries < 0 || p.backoff_base_ms < 0.0
    || p.backoff_mult < 1.0 || p.succ_window < 1
  then invalid_arg "Chord.Lookup: ill-formed resilience policy"

let attempt_delay p k =
  if k = 0 then p.rpc_timeout_ms
  else
    let backoff = p.backoff_base_ms *. (p.backoff_mult ** float_of_int (k - 1)) in
    Float.min backoff p.rpc_timeout_ms +. p.rpc_timeout_ms

let live_owner net ~is_alive ~key =
  let n = Network.size net in
  let rec go node steps =
    if steps >= n then None
    else if is_alive node then Some node
    else go (Network.successor net node) (steps + 1)
  in
  go (Network.successor_of_key net key) 0

type attempt = {
  outcome : result option;
  retries : int;
  timeouts : int;
  fallbacks : int;
  penalty_ms : float;
}

let route_resilient ?(trace = Obs.Trace.disabled) ?(policy = default_policy) net lat ~is_alive
    ~origin ~key =
  check_policy policy;
  if not (is_alive origin) then invalid_arg "Chord.Lookup.route_resilient: origin is dead";
  let sp = Network.space net in
  let n = Network.size net in
  let id_of i = Network.id net i in
  let traced = Obs.Trace.enabled trace in
  let lid =
    if traced then Obs.Trace.start trace ~algo:"chord" ~origin ~key:(Id.to_hex key) else 0
  in
  let hops = ref [] in
  let total = ref 0.0 in
  let count = ref 0 in
  let pos = ref origin in
  let retries = ref 0 in
  let timeouts = ref 0 in
  let fallbacks = ref 0 in
  let penalty = ref 0.0 in
  let record from_node to_node =
    let l = Topology.Latency.host_latency lat (Network.host net from_node) (Network.host net to_node) in
    if traced then
      Obs.Trace.hop trace ~lookup:lid ~seq:!count ~layer:1 ~from_node ~to_node ~latency_ms:l;
    hops := { from_node; to_node; latency = l } :: !hops;
    total := !total +. l;
    incr count;
    pos := to_node
  in
  let fallback at dead =
    fallbacks := !fallbacks + 1;
    if traced then
      Obs.Trace.recover trace ~lookup:lid ~kind:Obs.Trace.Fallback ~layer:1 ~at_node:at
        ~dead_node:dead ~delay_ms:0.0
  in
  (* exhaust every contact attempt on a dead preferred next hop — the full
     timeout + backoff schedule is charged to the lookup — then fall back *)
  let probe at dead =
    timeouts := !timeouts + 1;
    for k = 0 to policy.max_retries do
      let d = attempt_delay policy k in
      retries := !retries + 1;
      penalty := !penalty +. d;
      total := !total +. d;
      if traced then
        Obs.Trace.recover trace ~lookup:lid ~kind:Obs.Trace.Retry ~layer:1 ~at_node:at
          ~dead_node:dead ~delay_ms:d
    done;
    fallback at dead
  in
  let guard = 4 * (Id.bits sp + n) in
  let rec loop cur steps =
    if steps > guard then failwith "Chord.Lookup: resilient routing did not terminate";
    let snth k = Network.succ_list_nth net cur k in
    let llen = Network.succ_list_len net in
    (* first live successor-list entry; dead entries before it are known via
       heartbeats, so skipping them costs no probe. Stop if the list wraps
       back to cur (possible when the list is longer than the population). *)
    let rec first_live i =
      if i >= llen || snth i = cur then None
      else if is_alive (snth i) then Some i
      else first_live (i + 1)
    in
    let emit_skips upto =
      for j = 0 to upto - 1 do
        fallback cur (snth j)
      done
    in
    match first_live 0 with
    | Some i when Id.in_oc key ~lo:(id_of cur) ~hi:(id_of (snth i)) ->
        (* s is the first live node clockwise from cur and the key precedes
           it: s is the live owner — final hop *)
        emit_skips i;
        record cur (snth i);
        Some (snth i)
    | s_opt -> (
        let candidates = Network.preceding_candidates net cur ~key in
        (* farthest-first; probing a dead finger costs the full schedule *)
        let rec try_fingers = function
          | [] -> None
          | f :: rest ->
              if is_alive f then Some f
              else begin
                probe cur f;
                try_fingers rest
              end
        in
        match try_fingers candidates with
        | Some next ->
            record cur next;
            loop next (steps + 1)
        | None -> (
            match s_opt with
            | Some i ->
                emit_skips i;
                record cur (snth i);
                loop (snth i) (steps + 1)
            | None -> None (* locally partitioned: nothing live to forward to *)))
  in
  let dest_opt =
    if Id.in_oc key ~lo:(id_of (Network.predecessor net origin)) ~hi:(id_of origin) then Some origin
    else loop origin 1
  in
  if traced then
    Obs.Trace.finish trace ~lookup:lid
      ~destination:(Option.value ~default:!pos dest_opt)
      ~hops:!count ~latency_ms:!total ~finished_at_layer:1;
  let outcome =
    Option.map
      (fun destination ->
        { origin; key; destination; hops = List.rev !hops; hop_count = !count; latency = !total })
      dest_opt
  in
  { outcome; retries = !retries; timeouts = !timeouts; fallbacks = !fallbacks; penalty_ms = !penalty }
