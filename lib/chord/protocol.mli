(** Message-level Chord protocol (join / stabilize / notify / fix-fingers /
    check-predecessor) running on {!Simnet.Engine}.

    This is the dynamic counterpart of the oracle builder in {!Network}: real
    Chord as in Stoica et al., driven entirely by simulated messages and
    timers, with successor lists for fault tolerance. Nodes join through a
    bootstrap peer, periodically stabilize, and survive silent node failures
    (the engine drops messages to dead nodes; requesters detect loss by
    timeout and route around).

    Tests assert that a protocol-built ring converges to exactly the
    fixpoint {!Network.build} computes directly, and that lookups keep
    succeeding under churn and message loss. *)

type config = {
  space : Hashid.Id.space;
  stabilize_every : float;  (** ms between stabilize rounds *)
  fix_fingers_every : float;
  check_pred_every : float;
  fingers_per_round : int;  (** finger slots refreshed per fix-fingers round *)
  succ_list_len : int;
  rpc_timeout : float;  (** ms before a request is considered lost *)
  lookup_retries : int;
  stability_k : int;
      (** consecutive unchanged fingerprint probes before the ring is
          declared converged (default 3, must be >= 1) *)
  adaptive : bool;
      (** back off maintenance intervals while converged (default false —
          fixed cadence, byte-compatible with earlier versions) *)
  backoff_max : float;
      (** cap on the adaptive interval multiplier (default 8.0, >= 1) *)
}

val default_config : Hashid.Id.space -> config

type t

val create : ?ts:Obs.Timeseries.t -> config -> Simnet.Engine.t -> t
(** [ts] (default disabled) receives churn series stamped with sim time:
    gauge [chord.members] (nodes present and alive, set on every lifecycle
    event — joins still in progress count) and counters [chord.joins]
    (initiated), [chord.joins_completed] (first successor learned,
    maintenance started) and [chord.fails]. Convergence series: counter
    [chord.maint.ops] (maintenance RPCs initiated), gauges
    [chord.maint.scale] (current interval multiplier) and [chord.stable]
    (0/1 convergence flag, sampled at probe cadence).

    Raises [Invalid_argument] if [stability_k < 1] or [backoff_max < 1]. *)

val engine : t -> Simnet.Engine.t
val config : t -> config

val spawn : t -> addr:int -> id:Hashid.Id.t -> unit
(** Create the first node: a one-node ring (its own successor), maintenance
    timers started. *)

val join : t -> addr:int -> id:Hashid.Id.t -> bootstrap:int -> unit
(** Schedule a join through [bootstrap] (which must eventually answer). The
    node is live once its first [find_successor] reply arrives. *)

val fail_node : t -> int -> unit
(** Silent fail: the node stops responding (engine-level kill). *)

type lookup_outcome = {
  owner_addr : int;
  owner_id : Hashid.Id.t;
  hops : int;  (** overlay forwarding steps, as counted in the paper *)
  retries : int;
}

val lookup :
  t -> origin:int -> key:Hashid.Id.t -> (lookup_outcome option -> unit) -> unit
(** Asynchronous lookup; the callback gets [None] after all retries time
    out. *)

(** {2 Introspection (tests and examples)} *)

val is_member : t -> int -> bool
(** Spawned/joined and currently alive. *)

val node_id : t -> int -> Hashid.Id.t
val successor_addr : t -> int -> int option
val predecessor_addr : t -> int -> int option
val successor_list_addrs : t -> int -> int list
val finger_addrs : t -> int -> int option array

val ring_from : t -> int -> int list
(** Follow successor pointers from a node until the cycle closes (or a
    length guard trips) — the current ring order as this node sees it. *)

val live_members : t -> int list

(** {2 Convergence and maintenance cost}

    A {!Simnet.Stability} detector fingerprints the whole routing state
    (live membership, predecessors, successor lists, finger tables) at a
    fixed [stabilize_every] cadence, from the first spawn/join on. With
    [adaptive] set, maintenance intervals double while the ring is stable
    (up to [backoff_max]) and snap back to the base cadence the moment the
    fingerprint changes or a lifecycle event lands. The probe itself runs
    as an engine god-event: it sends no messages and never backs off, so
    detection latency stays bounded. *)

val stability : t -> Simnet.Stability.t
val converged : t -> bool
(** [converged t = Simnet.Stability.is_stable (stability t)]. *)

val interval_scale : t -> float
(** Current maintenance-interval multiplier (1.0 unless [adaptive]). *)

val maintenance_ops : t -> int
(** Total maintenance RPCs initiated (stabilize + notify + fix-fingers +
    check-predecessor) — the bandwidth-overhead measure. *)

val export_metrics : ?prefix:string -> t -> Obs.Metrics.t -> unit
(** Counters [<prefix>.maint.{stabilize,notify,fix_fingers,check_pred,total}],
    gauge [<prefix>.maint.scale], and the detector's metrics under
    [<prefix>.stability] (default prefix ["chord.protocol"]). Idempotent. *)
