module Id = Hashid.Id
module Engine = Simnet.Engine
module Netspan = Obs.Netspan

type config = {
  space : Id.space;
  stabilize_every : float;
  fix_fingers_every : float;
  check_pred_every : float;
  fingers_per_round : int;
  succ_list_len : int;
  rpc_timeout : float;
  lookup_retries : int;
  stability_k : int;
  adaptive : bool;
  backoff_max : float;
}

let default_config space =
  {
    space;
    stabilize_every = 500.0;
    fix_fingers_every = 500.0;
    check_pred_every = 1000.0;
    fingers_per_round = 8;
    succ_list_len = 4;
    rpc_timeout = 2000.0;
    lookup_retries = 3;
    stability_k = 3;
    adaptive = false;
    backoff_max = 8.0;
  }

type peer = { paddr : int; pid : Id.t }

type pnode = {
  addr : int;
  id : Id.t;
  mutable pred : peer option;
  mutable succs : peer list; (* head = immediate successor; never empty once live *)
  fingers : peer option array;
  mutable next_finger : int;
  mutable anchor : int;
      (* a long-lived re-entry point (the bootstrap peer): a node that loses
         its whole successor list to failures/loss re-joins through it
         instead of staying marooned in a self-ring *)
  mutable stabilize_rounds : int;
  mutable succ_suspect : int;
      (* consecutive stabilize timeouts against the current successor; a
         single lost reply must not expunge a healthy peer *)
}

type t = {
  cfg : config;
  eng : Engine.t;
  nodes : (int, pnode) Hashtbl.t;
  stab : Simnet.Stability.t;
  mutable scale : float; (* current maintenance-interval multiplier, >= 1 *)
  mutable probing : bool; (* fingerprint probe loop started *)
  mutable maint_stabilize : int;
  mutable maint_notify : int;
  mutable maint_fix_fingers : int;
  mutable maint_check_pred : int;
  ts_members : Obs.Timeseries.series;
  ts_joins : Obs.Timeseries.series;
  ts_join_done : Obs.Timeseries.series;
  ts_fails : Obs.Timeseries.series;
  ts_maint : Obs.Timeseries.series;
  ts_scale : Obs.Timeseries.series;
  ts_stable : Obs.Timeseries.series;
}

let create ?(ts = Obs.Timeseries.disabled) cfg eng =
  if cfg.stability_k < 1 then invalid_arg "Chord.Protocol: stability_k must be >= 1";
  if cfg.backoff_max < 1.0 then invalid_arg "Chord.Protocol: backoff_max must be >= 1";
  {
    cfg;
    eng;
    nodes = Hashtbl.create 64;
    stab = Simnet.Stability.create ~k:cfg.stability_k ();
    scale = 1.0;
    probing = false;
    maint_stabilize = 0;
    maint_notify = 0;
    maint_fix_fingers = 0;
    maint_check_pred = 0;
    ts_members = Obs.Timeseries.gauge ts "chord.members";
    ts_joins = Obs.Timeseries.counter ts "chord.joins";
    ts_join_done = Obs.Timeseries.counter ts "chord.joins_completed";
    ts_fails = Obs.Timeseries.counter ts "chord.fails";
    ts_maint = Obs.Timeseries.counter ts "chord.maint.ops";
    ts_scale = Obs.Timeseries.gauge ts "chord.maint.scale";
    ts_stable = Obs.Timeseries.gauge ts "chord.stable";
  }

let engine t = t.eng
let config t = t.cfg
let stability t = t.stab
let converged t = Simnet.Stability.is_stable t.stab
let interval_scale t = t.scale

let maintenance_ops t =
  t.maint_stabilize + t.maint_notify + t.maint_fix_fingers + t.maint_check_pred

(* one maintenance RPC initiated (stabilize ask, notify, finger fix, pred
   check) — the unit the bandwidth-overhead series counts in *)
let maint t field =
  (match field with
  | `Stabilize -> t.maint_stabilize <- t.maint_stabilize + 1
  | `Notify -> t.maint_notify <- t.maint_notify + 1
  | `Fix -> t.maint_fix_fingers <- t.maint_fix_fingers + 1
  | `Check -> t.maint_check_pred <- t.maint_check_pred + 1);
  Obs.Timeseries.add t.ts_maint ~at:(Engine.now t.eng) 1.0

let self_peer pn = { paddr = pn.addr; pid = pn.id }
let get t addr = Hashtbl.find t.nodes addr

let is_member t addr = Hashtbl.mem t.nodes addr && Engine.is_alive t.eng addr
let node_id t addr = (get t addr).id

let successor_addr t addr =
  match (get t addr).succs with [] -> None | s :: _ -> Some s.paddr

let predecessor_addr t addr = Option.map (fun p -> p.paddr) (get t addr).pred
let successor_list_addrs t addr = List.map (fun p -> p.paddr) (get t addr).succs
let finger_addrs t addr = Array.map (Option.map (fun p -> p.paddr)) (get t addr).fingers

let live_members t =
  Hashtbl.fold (fun addr _ acc -> if Engine.is_alive t.eng addr then addr :: acc else acc) t.nodes []
  |> List.sort Stdlib.compare

(* Lifecycle events are rare relative to messages, so counting live members
   on each one is cheap enough for the membership gauge. *)
let emit_members t =
  let count = Hashtbl.fold (fun a _ n -> if Engine.is_alive t.eng a then n + 1 else n) t.nodes 0 in
  Obs.Timeseries.set t.ts_members ~at:(Engine.now t.eng) (float_of_int count)

(* Deterministic digest of the whole routing state: live membership plus
   every live node's predecessor, successor list and finger table, visited
   in sorted address order. Any change a maintenance round can make (a
   learned successor, an expunged peer, a filled finger, a death) moves it. *)
let fingerprint t =
  let addrs =
    Hashtbl.fold (fun a _ acc -> a :: acc) t.nodes [] |> List.sort Stdlib.compare
  in
  let open Simnet.Stability in
  List.fold_left
    (fun acc addr ->
      if not (Engine.is_alive t.eng addr) then acc
      else begin
        let pn = Hashtbl.find t.nodes addr in
        let acc = fp_add acc addr in
        let acc = fp_add acc (match pn.pred with None -> -1 | Some p -> p.paddr) in
        let acc = List.fold_left (fun acc p -> fp_add acc p.paddr) acc pn.succs in
        let acc = fp_add acc (-2) in
        Array.fold_left
          (fun acc f -> fp_add acc (match f with None -> -1 | Some p -> p.paddr))
          acc pn.fingers
      end)
    fp_init addrs

(* Fixed-cadence convergence probe (a god-event loop, so it outlives any
   single node and sends no messages): observe the fingerprint, then drive
   the adaptive backoff — double the maintenance-interval multiplier while
   stable, snap it back to 1 the moment a change is seen. The probe cadence
   itself is never scaled: it bounds detection latency. *)
let rec probe t =
  let at = Engine.now t.eng in
  Simnet.Stability.observe t.stab ~at ~fingerprint:(fingerprint t);
  if t.cfg.adaptive then
    t.scale <-
      (if Simnet.Stability.is_stable t.stab then Float.min t.cfg.backoff_max (t.scale *. 2.0)
       else 1.0);
  Obs.Timeseries.set t.ts_scale ~at t.scale;
  Obs.Timeseries.set t.ts_stable ~at (if Simnet.Stability.is_stable t.stab then 1.0 else 0.0);
  Engine.schedule t.eng ~delay:t.cfg.stabilize_every (fun () -> probe t)

let ensure_probe t =
  if not t.probing then begin
    t.probing <- true;
    Engine.schedule t.eng ~delay:t.cfg.stabilize_every (fun () -> probe t)
  end

(* a lifecycle event is about to change the routing state: restart the
   convergence clock and revert any backed-off maintenance interval *)
let perturb t =
  Simnet.Stability.perturb t.stab ~at:(Engine.now t.eng);
  t.scale <- 1.0

let ring_from t start =
  let guard = 2 * (Hashtbl.length t.nodes + 1) in
  let rec go addr acc n =
    if n > guard then List.rev acc
    else
      match successor_addr t addr with
      | None -> List.rev acc
      | Some s when s = start -> List.rev acc
      | Some s -> go s (s :: acc) (n + 1)
  in
  go start [ start ] 0

(* --- message plumbing ------------------------------------------------- *)

(* Request/response with timeout. [service] runs at [dst] against its node
   state and must call its continuation exactly once with the response;
   the response value travels back in a second message. A timer at the
   requester fires [on_timeout] if the response has not arrived. [kind]
   labels the request span for the netspan tracer; the response leg is
   always a [Reply] (and a causal child of the request). *)
let ask t ~kind ~src ~dst ~(service : pnode -> 'a) ~(ok : 'a -> unit) ~(timeout : unit -> unit) =
  let settled = ref false in
  Engine.send t.eng ~kind ~src ~dst (fun () ->
      match Hashtbl.find_opt t.nodes dst with
      | None -> ()
      | Some pn ->
          let response = service pn in
          Engine.send t.eng ~kind:Netspan.Reply ~src:dst ~dst:src (fun () ->
              if not !settled then begin
                settled := true;
                ok response
              end));
  Engine.timer t.eng ~node:src ~delay:t.cfg.rpc_timeout (fun () ->
      if not !settled then begin
        settled := true;
        timeout ()
      end)

(* Split-ring healing: parallel rings (formed under heavy loss or
   simultaneous joins) never merge through stabilize alone, because no
   notify crosses rings. Periodically each node asks its anchor's ring for
   its own successor and adopts the answer when it is closer than the
   current one; since every join anchors at the same long-lived peer, that
   ring is authoritative and stray rings drain into it. *)
let anchor_crosscheck_period = 8

(* Remove a peer everywhere it appears in local state (it timed out). *)
let expunge pn bad =
  pn.succs <- List.filter (fun p -> p.paddr <> bad) pn.succs;
  (match pn.pred with Some p when p.paddr = bad -> pn.pred <- None | _ -> ());
  Array.iteri
    (fun i f -> match f with Some p when p.paddr = bad -> pn.fingers.(i) <- None | _ -> ())
    pn.fingers

let current_successor pn = match pn.succs with [] -> self_peer pn | s :: _ -> s

(* Best known next hop strictly inside (self, key): scan fingers from the
   top, then the successor list; fall back to the immediate successor. *)
let closest_preceding pn ~key =
  let best = ref None in
  let consider p =
    if p.paddr <> pn.addr && Id.in_oo p.pid ~lo:pn.id ~hi:key then
      match !best with
      | Some b when Id.in_oo p.pid ~lo:b.pid ~hi:key -> best := Some p
      | Some _ -> ()
      | None -> best := Some p
  in
  Array.iter (function Some p -> consider p | None -> ()) pn.fingers;
  List.iter consider pn.succs;
  match !best with Some p -> p | None -> current_successor pn

(* --- find_successor: recursive forwarding with direct reply ----------- *)

(* [kind] is the span kind of the next message this cascade sends: the
   initiating site's RPC kind on the first send (so the tree's root always
   carries it, even when the cascade is a single direct reply), [Forward]
   on every recursive hop after that, [Reply] on the response leg. *)
let rec handle_find_successor t pn ~kind ~key ~hops ~reply_to ~(reply : peer -> int -> unit) =
  let succ = current_successor pn in
  if Id.in_oc key ~lo:pn.id ~hi:succ.pid || succ.paddr = pn.addr then
    (* reply travels straight back to the requester *)
    Engine.send t.eng
      ~kind:(match kind with Netspan.Forward -> Netspan.Reply | k -> k)
      ~src:pn.addr ~dst:reply_to
      (fun () -> reply succ (hops + 1))
  else begin
    let next = closest_preceding pn ~key in
    Engine.send t.eng ~kind ~src:pn.addr ~dst:next.paddr (fun () ->
        match Hashtbl.find_opt t.nodes next.paddr with
        | None -> ()
        | Some pn' ->
            handle_find_successor t pn' ~kind:Netspan.Forward ~key ~hops:(hops + 1) ~reply_to
              ~reply)
  end

(* find_successor issued from [src] with timeout/retry *)
let find_successor t ~kind ~src ~key ~retries ~(ok : peer -> int -> unit) ~(failed : unit -> unit) =
  let rec attempt n =
    let settled = ref false in
    (match Hashtbl.find_opt t.nodes src with
    | None -> ()
    | Some pn ->
        handle_find_successor t pn ~kind ~key ~hops:(-1) ~reply_to:src ~reply:(fun p h ->
            if not !settled then begin
              settled := true;
              ok p h
            end));
    Engine.timer t.eng ~node:src ~delay:t.cfg.rpc_timeout (fun () ->
        if not !settled then begin
          settled := true;
          if n > 0 then attempt (n - 1) else failed ()
        end)
  in
  attempt retries

(* --- periodic maintenance --------------------------------------------- *)

(* Successor-list hygiene: drop ourselves, dedup by address (keeping the
   first = closest occurrence), cap at the configured length. Entries that
   are already gone are dropped at adoption (a quick liveness ping in a
   real deployment): a dead entry adopted from a neighbour's stale list
   would poison closest_preceding from the tail, where no stabilize
   timeout ever examines it — lists heal head-first only. *)
let truncate_succs t pn l =
  let seen = Hashtbl.create 8 in
  let deduped =
    List.filter
      (fun p ->
        if p.paddr = pn.addr || Hashtbl.mem seen p.paddr then false
        else if not (Engine.is_alive t.eng p.paddr) then false
        else begin
          Hashtbl.replace seen p.paddr ();
          true
        end)
      l
  in
  List.filteri (fun i _ -> i < t.cfg.succ_list_len) deduped

let rec stabilize t pn =
  let succ = current_successor pn in
  if succ.paddr = pn.addr then begin
    (* self-ring: adopt our predecessor as successor once one shows up;
       failing that, re-enter the ring through the anchor *)
    (match pn.pred with
    | Some p when p.paddr <> pn.addr -> pn.succs <- [ p ]
    | _ ->
        if pn.anchor <> pn.addr && Engine.is_alive t.eng pn.anchor then begin
          maint t `Stabilize;
          Engine.send t.eng ~kind:Netspan.Stabilize ~src:pn.addr ~dst:pn.anchor (fun () ->
              match Hashtbl.find_opt t.nodes pn.anchor with
              | None -> ()
              | Some apn ->
                  handle_find_successor t apn ~kind:Netspan.Forward ~key:pn.id ~hops:0
                    ~reply_to:pn.addr ~reply:(fun p _ ->
                      if (current_successor pn).paddr = pn.addr && p.paddr <> pn.addr then
                        pn.succs <- [ p ]))
        end);
    schedule_stabilize t pn
  end
  else begin
    maint t `Stabilize;
    ask t ~kind:Netspan.Stabilize ~src:pn.addr ~dst:succ.paddr
      ~service:(fun spn -> (spn.pred, self_peer spn :: spn.succs))
      ~ok:(fun (spred, slist) ->
        pn.succ_suspect <- 0;
        (match spred with
        | Some x when x.paddr <> pn.addr && Id.in_oo x.pid ~lo:pn.id ~hi:succ.pid ->
            (* a closer successor exists between us and our successor *)
            pn.succs <- truncate_succs t pn (x :: slist)
        | _ ->
            (* refresh our successor list from the successor's *)
            pn.succs <- truncate_succs t pn slist);
        pn.stabilize_rounds <- pn.stabilize_rounds + 1;
        if
          pn.stabilize_rounds mod anchor_crosscheck_period = 0
          && pn.anchor <> pn.addr
          && Engine.is_alive t.eng pn.anchor
        then begin
          maint t `Stabilize;
          Engine.send t.eng ~kind:Netspan.Stabilize ~src:pn.addr ~dst:pn.anchor (fun () ->
              match Hashtbl.find_opt t.nodes pn.anchor with
              | None -> ()
              | Some apn ->
                  handle_find_successor t apn ~kind:Netspan.Forward ~key:pn.id ~hops:0
                    ~reply_to:pn.addr ~reply:(fun p _ ->
                      let cur = current_successor pn in
                      if
                        p.paddr <> pn.addr
                        && (cur.paddr = pn.addr || Id.in_oo p.pid ~lo:pn.id ~hi:cur.pid)
                      then pn.succs <- truncate_succs t pn (p :: pn.succs)))
        end;
        let new_succ = current_successor pn in
        (* notify: we believe we are their predecessor *)
        maint t `Notify;
        Engine.send t.eng ~kind:Netspan.Notify ~src:pn.addr ~dst:new_succ.paddr (fun () ->
            match Hashtbl.find_opt t.nodes new_succ.paddr with
            | None -> ()
            | Some spn -> (
                let candidate = self_peer pn in
                match spn.pred with
                | None -> spn.pred <- Some candidate
                | Some p when Id.in_oo candidate.pid ~lo:p.pid ~hi:spn.id ->
                    spn.pred <- Some candidate
                | Some _ -> ()));
        schedule_stabilize t pn)
      ~timeout:(fun () ->
        (* only declare the successor dead after two consecutive silent
           rounds — one lost reply is routine under message loss *)
        pn.succ_suspect <- pn.succ_suspect + 1;
        if pn.succ_suspect >= 2 && (current_successor pn).paddr = succ.paddr then begin
          pn.succ_suspect <- 0;
          expunge pn succ.paddr;
          if pn.succs = [] then pn.succs <- [ self_peer pn ]
        end;
        schedule_stabilize t pn)
  end

and schedule_stabilize t pn =
  Engine.timer t.eng ~node:pn.addr
    ~delay:(t.cfg.stabilize_every *. t.scale)
    (fun () -> stabilize t pn)

let rec fix_fingers t pn =
  let bits = Id.bits t.cfg.space in
  let batch = min t.cfg.fingers_per_round bits in
  let rec fix k =
    if k = 0 then ()
    else begin
      let i = pn.next_finger in
      pn.next_finger <- (pn.next_finger + 1) mod bits;
      let start = Id.add_pow2 t.cfg.space pn.id i in
      maint t `Fix;
      find_successor t ~kind:Netspan.Fix_fingers ~src:pn.addr ~key:start ~retries:0
        ~ok:(fun p _ -> pn.fingers.(i) <- Some p)
        ~failed:(fun () ->
          (* unresolvable finger: clear it rather than keep a possibly-dead
             entry steering closest_preceding into a black hole — with the
             slot empty, routing falls back to lower fingers and the
             successor list until a later round re-resolves it *)
          pn.fingers.(i) <- None);
      fix (k - 1)
    end
  in
  fix batch;
  Engine.timer t.eng ~node:pn.addr
    ~delay:(t.cfg.fix_fingers_every *. t.scale)
    (fun () -> fix_fingers t pn)

let rec check_predecessor t pn =
  (match pn.pred with
  | None -> ()
  | Some p ->
      if p.paddr <> pn.addr then begin
        maint t `Check;
        ask t ~kind:Netspan.Check_pred ~src:pn.addr ~dst:p.paddr
          ~service:(fun _ -> ())
          ~ok:(fun () -> ())
          ~timeout:(fun () ->
            match pn.pred with
            | Some q when q.paddr = p.paddr -> pn.pred <- None
            | _ -> ())
      end);
  Engine.timer t.eng ~node:pn.addr
    ~delay:(t.cfg.check_pred_every *. t.scale)
    (fun () -> check_predecessor t pn)

let start_maintenance t pn =
  schedule_stabilize t pn;
  Engine.timer t.eng ~node:pn.addr ~delay:t.cfg.fix_fingers_every (fun () -> fix_fingers t pn);
  Engine.timer t.eng ~node:pn.addr ~delay:t.cfg.check_pred_every (fun () -> check_predecessor t pn)

(* --- lifecycle --------------------------------------------------------- *)

let fresh_node t ~addr ~id =
  if Hashtbl.mem t.nodes addr then invalid_arg "Chord.Protocol: address already in use";
  let pn =
    {
      addr;
      id;
      pred = None;
      succs = [];
      fingers = Array.make (Id.bits t.cfg.space) None;
      next_finger = 0;
      anchor = addr;
      stabilize_rounds = 0;
      succ_suspect = 0;
    }
  in
  Hashtbl.replace t.nodes addr pn;
  pn

let spawn t ~addr ~id =
  let pn = fresh_node t ~addr ~id in
  pn.succs <- [ self_peer pn ];
  start_maintenance t pn;
  perturb t;
  ensure_probe t;
  emit_members t

let join t ~addr ~id ~bootstrap =
  let pn = fresh_node t ~addr ~id in
  pn.anchor <- bootstrap;
  perturb t;
  ensure_probe t;
  Obs.Timeseries.add t.ts_joins ~at:(Engine.now t.eng) 1.0;
  emit_members t;
  let rec attempt n =
    (* route the join query through the bootstrap node *)
    let settled = ref false in
    Engine.send t.eng ~kind:Netspan.Join ~src:addr ~dst:bootstrap (fun () ->
        match Hashtbl.find_opt t.nodes bootstrap with
        | None -> ()
        | Some bpn ->
            handle_find_successor t bpn ~kind:Netspan.Forward ~key:id ~hops:0 ~reply_to:addr
              ~reply:(fun p _ ->
                if not !settled then begin
                  settled := true;
                  pn.succs <- [ p ];
                  start_maintenance t pn;
                  Obs.Timeseries.add t.ts_join_done ~at:(Engine.now t.eng) 1.0
                end));
    Engine.timer t.eng ~node:addr ~delay:t.cfg.rpc_timeout (fun () ->
        if not !settled then begin
          settled := true;
          (* a node that never joins is lost forever: keep retrying, with a
             longer pause once the initial retry budget is spent *)
          let backoff = if n > 0 then 0.0 else 4.0 *. t.cfg.rpc_timeout in
          Engine.timer t.eng ~node:addr ~delay:backoff (fun () -> attempt (max 0 (n - 1)))
        end)
  in
  attempt t.cfg.lookup_retries

let fail_node t addr =
  if not (Hashtbl.mem t.nodes addr) then invalid_arg "Chord.Protocol.fail_node: unknown node";
  Engine.kill t.eng addr;
  perturb t;
  Obs.Timeseries.add t.ts_fails ~at:(Engine.now t.eng) 1.0;
  emit_members t

type lookup_outcome = { owner_addr : int; owner_id : Id.t; hops : int; retries : int }

let lookup t ~origin ~key k =
  let rec attempt budget tries =
    find_successor t ~kind:Netspan.Lookup ~src:origin ~key ~retries:0
      ~ok:(fun p hops ->
        k (Some { owner_addr = p.paddr; owner_id = p.pid; hops; retries = tries }))
      ~failed:(fun () -> if budget > 0 then attempt (budget - 1) (tries + 1) else k None)
  in
  attempt t.cfg.lookup_retries 0

let export_metrics ?(prefix = "chord.protocol") t m =
  let c name v = Obs.Metrics.set_counter (Obs.Metrics.counter m (prefix ^ "." ^ name)) v in
  c "maint.stabilize" t.maint_stabilize;
  c "maint.notify" t.maint_notify;
  c "maint.fix_fingers" t.maint_fix_fingers;
  c "maint.check_pred" t.maint_check_pred;
  c "maint.total" (maintenance_ops t);
  Obs.Metrics.set (Obs.Metrics.gauge m (prefix ^ ".maint.scale")) t.scale;
  Simnet.Stability.export_metrics ~prefix:(prefix ^ ".stability") t.stab m
