module Id = Hashid.Id

type t = {
  owner : int;
  exps : int array; (* ascending; exps.(k) is the first exponent of segment k *)
  nodes : int array; (* aligned: the finger node for that segment *)
  bits : int;
}

(* index of the first member id >= key, circularly (i.e. the key's successor
   position in the sorted member array) *)
let successor_pos member_ids key =
  let n = Array.length member_ids in
  let rec search lo hi =
    (* invariant: ids below lo are < key, ids at/after hi are >= key *)
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if Id.compare member_ids.(mid) key < 0 then search (mid + 1) hi else search lo mid
  in
  let pos = search 0 n in
  if pos = n then 0 else pos

let build sp ~owner ~owner_id ~member_ids ~member_nodes =
  let n = Array.length member_ids in
  if n = 0 then invalid_arg "Finger_table.build: no members";
  if n <> Array.length member_nodes then invalid_arg "Finger_table.build: misaligned arrays";
  let bits = Id.bits sp in
  let exps = ref [] and nodes = ref [] in
  let last = ref (-1) in
  for i = 0 to bits - 1 do
    let start = Id.add_pow2 sp owner_id i in
    let node = member_nodes.(successor_pos member_ids start) in
    if node <> !last then begin
      exps := i :: !exps;
      nodes := node :: !nodes;
      last := node
    end
  done;
  {
    owner;
    exps = Array.of_list (List.rev !exps);
    nodes = Array.of_list (List.rev !nodes);
    bits;
  }

let owner t = t.owner

let segments t = Array.init (Array.length t.exps) (fun k -> (t.exps.(k), t.nodes.(k)))

let finger t i =
  if i < 0 || i >= t.bits then invalid_arg "Finger_table.finger: index out of range";
  (* last segment whose first exponent <= i *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi + 1) / 2 in
      if t.exps.(mid) <= i then search mid hi else search lo (mid - 1)
  in
  t.nodes.(search 0 (Array.length t.exps - 1))

let distinct_count t = Array.length t.exps

let closest_preceding t ~id_of ~self ~key =
  (* scan segments from the farthest finger down; first one in (self, key) wins *)
  let rec go k =
    if k < 0 then None
    else
      let node = t.nodes.(k) in
      let id = id_of node in
      if Id.in_oo id ~lo:self ~hi:key then Some node else go (k - 1)
  in
  go (Array.length t.nodes - 1)

let preceding_candidates t ~id_of ~self ~key =
  (* same scan, but keep every qualifying finger: the resilient route tries
     them farthest-first until one is alive. Segments can repeat a node only
     non-adjacently, so dedup against everything already taken. *)
  let rec go k acc taken =
    if k < 0 then List.rev acc
    else
      let node = t.nodes.(k) in
      if (not (List.mem node taken)) && Id.in_oo (id_of node) ~lo:self ~hi:key then
        go (k - 1) (node :: acc) (node :: taken)
      else go (k - 1) acc taken
  in
  go (Array.length t.nodes - 1) [] []
