module Id = Hashid.Id

type t = {
  owner : int;
  exps : int array; (* ascending; exps.(k) is the first exponent of segment k *)
  nodes : int array; (* aligned: the finger node for that segment *)
  bits : int;
}

(* Emit the run-length segments of one finger table without materializing a
   [t]. The per-exponent finger position is monotone along the circle (the
   start point [owner + 2^i] moves strictly clockwise and never completes a
   full turn), so equal finger values form contiguous exponent runs; we
   gallop past each run instead of probing all [bits] exponents. Most tables
   have one giant low-exponent run (every [2^i] smaller than the successor
   gap maps to the successor), which galloping crosses in O(log run).

   The walk works in {e unrolled} positions [j] of [0 .. 2n]: [j < n] is
   sorted member [j], [j >= n] the same member one full turn later ([2n] =
   member 0 two turns up, reachable only when the owner is not a member).
   A start point [s = owner + 2^e] lies strictly within one clockwise turn
   of the owner, so its successor is the first unrolled position at-or-after
   [s]'s unrolled value — and because that value grows strictly with [e],
   the position never moves backwards. Two consequences make the scan cheap:
   a "did the finger move?" probe is a single id comparison ([ge] at the
   current position), and each new segment's position is found by a binary
   search over only the not-yet-passed window. [member_pre] (the aligned
   {!Id.prefix_int} column, see Network) turns almost every comparison into
   one integer load. *)
let pack sp ~owner_id ~member_ids ?member_pre ~member_nodes ~push () =
  let n = Array.length member_ids in
  if n = 0 then invalid_arg "Finger_table.pack: no members";
  if n <> Array.length member_nodes then invalid_arg "Finger_table.pack: misaligned arrays";
  (match member_pre with
  | Some p when Array.length p <> n -> invalid_arg "Finger_table.pack: misaligned prefixes"
  | _ -> ());
  let bits = Id.bits sp in
  (* compare member [j mod n] against a start-point value *)
  let cmp_at =
    match member_pre with
    | None -> fun j s _s_pre -> Id.compare member_ids.(j) s
    | Some pre ->
        fun j s s_pre ->
          let p = Array.unsafe_get pre j in
          if p < s_pre then -1
          else if p > s_pre then 1
          else Id.compare (Array.unsafe_get member_ids j) s
  in
  (* is unrolled position [j] at-or-after start point [s]?  [wrapped] = the
     addition [owner + 2^e] wrapped past zero, i.e. [s] sits on the turn
     above the base one *)
  let ge j ~s ~s_pre ~wrapped =
    if j >= 2 * n then true
    else if j < n then (not wrapped) && cmp_at j s s_pre >= 0
    else (not wrapped) || cmp_at (j - n) s s_pre >= 0
  in
  let start e =
    let s = Id.add_pow2 sp owner_id e in
    (s, Id.prefix_int s, Id.compare s owner_id < 0)
  in
  let pos = ref 0 (* first at-or-after position of the previous exponent *) in
  let prev_v = ref (-1) in
  let first = ref true in
  let i = ref 0 in
  while !i < bits do
    let s, s_pre, wrapped = start !i in
    (* this exponent's position: monotone, so search only [pos, 2n) *)
    let lo = ref !pos and hi = ref (2 * n) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if ge mid ~s ~s_pre ~wrapped then hi := mid else lo := mid + 1
    done;
    pos := !lo;
    let v = member_nodes.(!lo mod n) in
    (* a position move of exactly [n] (same member, one turn up) keeps the
       value: still the same run-length segment, no boundary to emit *)
    if !first || v <> !prev_v then push !i v;
    first := false;
    prev_v := v;
    (* gallop: double the stride while the probe's successor stays put *)
    let still e =
      let s, s_pre, wrapped = start e in
      ge !pos ~s ~s_pre ~wrapped
    in
    let last_good = ref !i and step = ref 1 in
    let probe = ref (!i + 1) in
    let growing = ref true in
    while !growing do
      if !probe >= bits then growing := false
      else if still !probe then begin
        last_good := !probe;
        step := !step * 2;
        probe := !last_good + !step
      end
      else growing := false
    done;
    (* binary search the first moved exponent in (last_good, min probe bits] *)
    let lo = ref (!last_good + 1) and hi = ref (min !probe bits) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if still mid then lo := mid + 1 else hi := mid
    done;
    i := !lo
  done

let build sp ~owner ~owner_id ~member_ids ~member_nodes =
  let bits = Id.bits sp in
  let exps = ref [] and nodes = ref [] in
  pack sp ~owner_id ~member_ids ~member_nodes
    ~push:(fun e v ->
      exps := e :: !exps;
      nodes := v :: !nodes)
    ();
  {
    owner;
    exps = Array.of_list (List.rev !exps);
    nodes = Array.of_list (List.rev !nodes);
    bits;
  }

let of_segments ~owner ~bits ~exps ~nodes =
  if Array.length exps <> Array.length nodes then
    invalid_arg "Finger_table.of_segments: misaligned arrays";
  if Array.length exps = 0 then invalid_arg "Finger_table.of_segments: empty table";
  { owner; exps; nodes; bits }

let owner t = t.owner

let segments t = Array.init (Array.length t.exps) (fun k -> (t.exps.(k), t.nodes.(k)))

let finger t i =
  if i < 0 || i >= t.bits then invalid_arg "Finger_table.finger: index out of range";
  (* last segment whose first exponent <= i *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi + 1) / 2 in
      if t.exps.(mid) <= i then search mid hi else search lo (mid - 1)
  in
  t.nodes.(search 0 (Array.length t.exps - 1))

let distinct_count t = Array.length t.exps

let closest_preceding t ~id_of ~self ~key =
  (* scan segments from the farthest finger down; first one in (self, key) wins *)
  let rec go k =
    if k < 0 then None
    else
      let node = t.nodes.(k) in
      let id = id_of node in
      if Id.in_oo id ~lo:self ~hi:key then Some node else go (k - 1)
  in
  go (Array.length t.nodes - 1)

(* Arena variants of the two scans above: operate directly on a [lo, hi)
   slice of a packed segment-node arena (see Network), so the lookup hot
   path touches no intermediate [t]. Segment exponents are irrelevant to
   both scans — only the node column is read. *)
let closest_preceding_arena ~nodes ~lo ~hi ~id_of ~self ~key =
  let rec go k =
    if k < lo then -1
    else
      let node : int = Array.unsafe_get nodes k in
      if Id.in_oo (id_of node) ~lo:self ~hi:key then node else go (k - 1)
  in
  go (hi - 1)

let preceding_candidates_arena ~nodes ~lo ~hi ~id_of ~self ~key =
  let rec go k acc taken =
    if k < lo then List.rev acc
    else
      let node : int = nodes.(k) in
      if (not (List.mem node taken)) && Id.in_oo (id_of node) ~lo:self ~hi:key then
        go (k - 1) (node :: acc) (node :: taken)
      else go (k - 1) acc taken
  in
  go (hi - 1) [] []

let preceding_candidates t ~id_of ~self ~key =
  (* same scan, but keep every qualifying finger: the resilient route tries
     them farthest-first until one is alive. Segments can repeat a node only
     non-adjacently, so dedup against everything already taken. *)
  let rec go k acc taken =
    if k < 0 then List.rev acc
    else
      let node = t.nodes.(k) in
      if (not (List.mem node taken)) && Id.in_oo (id_of node) ~lo:self ~hi:key then
        go (k - 1) (node :: acc) (node :: taken)
      else go (k - 1) acc taken
  in
  go (Array.length t.nodes - 1) [] []
