module Id = Hashid.Id

module Base = struct
  type t = { net : Network.t; lat : Topology.Latency.t }

  let name = "chord"
  let layered_name = "hieras"
  let size t = Network.size t.net
  let host t i = Network.host t.net i

  let link_latency t a b =
    Topology.Latency.host_latency t.lat (Network.host t.net a) (Network.host t.net b)

  let guard t = 4 * (Id.bits (Network.space t.net) + Network.size t.net)
  let owner_of_key t ~key = Network.successor_of_key t.net key
  let live_owner t ~is_alive ~key = Lookup.live_owner t.net ~is_alive ~key

  (* one greedy step of [Lookup.walk]: the successor when it owns the key,
     otherwise the closest preceding finger (successor fallback) *)
  let step t ~cur ~key =
    let net = t.net in
    let succ = Network.successor net cur in
    if Id.in_oc key ~lo:(Network.id net cur) ~hi:(Network.id net succ) then succ
    else
      let f = Network.closest_preceding_finger net cur ~key in
      if f >= 0 && f <> cur then f else succ

  (* the successor-list chain from [cur], stopping if it wraps — the same
     heartbeat window [Lookup.route_resilient] walks past dead successors *)
  let succ_chain net cur =
    let llen = Network.succ_list_len net in
    let rec entries i =
      if i >= llen then []
      else
        let s = Network.succ_list_nth net cur i in
        if s = cur then [] else s :: entries (i + 1)
    in
    entries 0

  let candidates t ~cur ~key =
    let net = t.net in
    let succ = Network.successor net cur in
    if Id.in_oc key ~lo:(Network.id net cur) ~hi:(Network.id net succ) then
      (* final-hop regime: the chain's first live entry is the live owner *)
      succ_chain net cur
    else
      let pc = Network.preceding_candidates net cur ~key in
      pc @ List.filter (fun s -> not (List.mem s pc)) (succ_chain net cur)

  (* A HIERAS ring over a Chord member subset is Chord again: the members
     sorted on the circle with finger tables restricted to the subset —
     the same state [Hnetwork]'s layer packs hold, in per-ring form. *)
  type ring = {
    r_members : int array; (* ascending by identifier *)
    r_pos : (int, int) Hashtbl.t;
    r_tables : Finger_table.t array; (* r_tables.(p) belongs to r_members.(p) *)
  }

  let make_ring t ~members =
    let net = t.net in
    let members = Array.copy members in
    Array.sort (fun a b -> Id.compare (Network.id net a) (Network.id net b)) members;
    let ids = Array.map (Network.id net) members in
    let m = Array.length members in
    let pos = Hashtbl.create (2 * m) in
    Array.iteri (fun p node -> Hashtbl.replace pos node p) members;
    let sp = Network.space net in
    let tables =
      Array.mapi
        (fun p node ->
          Finger_table.build sp ~owner:node ~owner_id:ids.(p) ~member_ids:ids
            ~member_nodes:members)
        members
    in
    { r_members = members; r_pos = pos; r_tables = tables }

  let ring_succ rg p = rg.r_members.((p + 1) mod Array.length rg.r_members)
  let ring_pos rg cur = Hashtbl.find rg.r_pos cur

  let ring_stop t rg ~cur ~key =
    let p = ring_pos rg cur in
    let succ = ring_succ rg p in
    Id.in_oc key ~lo:(Network.id t.net cur) ~hi:(Network.id t.net succ)

  let ring_step t rg ~cur ~key =
    let p = ring_pos rg cur in
    let succ = ring_succ rg p in
    match
      Finger_table.closest_preceding rg.r_tables.(p)
        ~id_of:(fun i -> Network.id t.net i)
        ~self:(Network.id t.net cur) ~key
    with
    | Some f when f <> cur -> f
    | _ -> succ

  let ring_candidates t rg ~cur ~key =
    let p = ring_pos rg cur in
    let pc =
      Finger_table.preceding_candidates rg.r_tables.(p)
        ~id_of:(fun i -> Network.id t.net i)
        ~self:(Network.id t.net cur) ~key
    in
    (* ring-successor chain up to the network's successor-list window — the
       per-ring analogue of [Hlookup]'s resilient chain walk *)
    let m = Array.length rg.r_members in
    let window = min (m - 1) (Network.succ_list_len t.net) in
    let chain = List.init window (fun k -> rg.r_members.((p + 1 + k) mod m)) in
    pc @ List.filter (fun s -> not (List.mem s pc)) chain

  let early_finish t ~cur ~key =
    let succ = Network.successor t.net cur in
    if Id.in_oc key ~lo:(Network.id t.net cur) ~hi:(Network.id t.net succ) then Some succ
    else None
end

include Routing.Extend (Base)

let make ~net ~lat = { Base.net; lat }
let network (t : t) = t.Base.net

(* The derived entry points would reproduce [Lookup]'s hop sequences, but the
   native implementations are the tested golden surface (and carry PR 5's
   exact fallback accounting) — delegate rather than re-derive. *)

let lift_flat (r : Lookup.result) : Routing.result =
  {
    origin = r.Lookup.origin;
    key = r.key;
    destination = r.destination;
    hops =
      List.map
        (fun (h : Lookup.hop) ->
          { Routing.from_node = h.from_node; to_node = h.to_node; latency = h.latency; layer = 1 })
        r.hops;
    hop_count = r.hop_count;
    latency = r.latency;
    hops_per_layer = [| r.hop_count |];
    latency_per_layer = [| r.latency |];
    finished_at_layer = 1;
  }

let lower_policy (p : Routing.policy) : Lookup.policy =
  {
    rpc_timeout_ms = p.Routing.rpc_timeout_ms;
    max_retries = p.max_retries;
    backoff_base_ms = p.backoff_base_ms;
    backoff_mult = p.backoff_mult;
    succ_window = p.succ_window;
  }

let route ?trace (t : t) ~origin ~key = lift_flat (Lookup.route ?trace t.Base.net t.Base.lat ~origin ~key)
let route_hops_only (t : t) ~origin ~key = Lookup.route_hops_only t.Base.net ~origin ~key

let route_resilient ?trace ?(policy = Routing.default_policy) (t : t) ~is_alive ~origin ~key =
  let a =
    Lookup.route_resilient ?trace ~policy:(lower_policy policy) t.Base.net t.Base.lat ~is_alive
      ~origin ~key
  in
  {
    Routing.outcome = Option.map lift_flat a.Lookup.outcome;
    retries = a.retries;
    timeouts = a.timeouts;
    fallbacks = a.fallbacks;
    layer_escapes = 0;
    penalty_ms = a.penalty_ms;
  }
