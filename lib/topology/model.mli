(** Facade over the three network models used in the paper's evaluation. *)

type kind = Transit_stub | Inet | Brite

val all : kind list
val name : kind -> string
(** "TS", "Inet", "BRITE" — the labels used in the paper's figures. *)

val of_name : string -> kind option
(** Case-insensitive parse of [name] (also accepts "ts", "transit-stub"). *)

val min_hosts : kind -> int
(** 1 except for Inet (3000), matching the paper's simulation setup. *)

val build : ?pool:Parallel.Pool.t -> kind -> hosts:int -> Prng.Rng.t -> Latency.t
(** Generate a topology of this kind with default parameters and the given
    number of DHT end-hosts. The pool parallelizes the oracle's Dijkstra
    precomputation; the topology itself is independent of the pool width. *)
