(** Facade over the three network models used in the paper's evaluation. *)

type kind = Transit_stub | Inet | Brite

val all : kind list
val name : kind -> string
(** "TS", "Inet", "BRITE" — the labels used in the paper's figures. *)

val of_name : string -> kind option
(** Case-insensitive parse of [name] (also accepts "ts", "transit-stub"). *)

val min_hosts : kind -> int
(** 1 except for Inet (3000), matching the paper's simulation setup. *)

val build :
  ?backend:Latency.backend ->
  ?pool:Parallel.Pool.t ->
  kind ->
  hosts:int ->
  Prng.Rng.t ->
  Latency.t
(** Generate a topology of this kind with default parameters and the given
    number of DHT end-hosts. [backend] selects the latency oracle's storage
    strategy (default eager); the pool parallelizes an eager oracle's
    Dijkstra precomputation. The topology — and every latency the oracle
    returns — is independent of both the backend and the pool width. *)
