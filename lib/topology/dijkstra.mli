(** Single-source shortest paths and all-pairs distance matrices.

    The latency oracle precomputes the router-to-router distance matrix with
    one Dijkstra run per source (binary heap, O(E log V) each); router graphs
    stay small (≤ ~2000 vertices) so this is cheap even for 10 000-host
    networks. *)

val distances : Graph.t -> src:int -> float array
(** Delay (ms) from [src] to every vertex; [infinity] for unreachable. *)

val distance_matrix : ?pool:Parallel.Pool.t -> Graph.t -> float array array
(** [m.(i).(j)] is the delay from router [i] to router [j]. Per-source runs
    are independent, so a pool spreads them over domains with bit-identical
    results (default: sequential). *)

val distance_matrix_flat : ?pool:Parallel.Pool.t -> Graph.t -> float array
(** The same matrix as one flat row-major array: the delay from [i] to [j]
    is at index [i * n + j]. A single allocation instead of [n] boxed rows —
    what the eager latency oracle stores. Bit-identical to
    {!distance_matrix} for any pool width. *)

val path : Graph.t -> src:int -> dst:int -> int list option
(** One shortest path as a vertex list ([src] first), if reachable. *)
