(** Undirected weighted graphs (router-level topologies).

    Construction happens through a mutable {!builder}; {!freeze} compacts the
    adjacency into flat arrays (CSR layout) for fast traversal during the
    all-pairs shortest-path precomputation. Weights are link delays in
    milliseconds. *)

type builder

val builder : int -> builder
(** [builder n] starts a graph with [n] vertices and no edges. *)

val add_edge : builder -> int -> int -> float -> unit
(** [add_edge b u v w] adds the undirected edge [u–v] with delay [w] ms.
    Self-loops are rejected; duplicate edges keep the smaller delay. *)

val has_edge : builder -> int -> int -> bool

type t
(** A frozen graph. *)

val freeze : builder -> t
(** Compact to CSR. Each vertex's adjacency segment is sorted by neighbor
    index, so the frozen layout — and every traversal order — is a function
    of the edge set alone, independent of insertion order and of the
    standard library's hash function. *)

val vertex_count : t -> int
val edge_count : t -> int
(** Number of undirected edges. *)

val degree : t -> int -> int

val iter_neighbors : t -> int -> (int -> float -> unit) -> unit
(** Iterate the neighbors of a vertex with their edge delays. *)

val fold_neighbors : t -> int -> ('a -> int -> float -> 'a) -> 'a -> 'a

val is_connected : t -> bool
(** BFS reachability from vertex 0 (false for the empty graph). *)

val components : t -> int array
(** Component label per vertex (labels are representative vertex ids). *)
