type params = {
  routers_per_host : float;
  min_degree : int;
  regions : int;
  local_bias : float;
  intra_delay_floor : float;
  intra_delay_scale : float;
  intra_delay_cap : float;
  inter_delay_floor : float;
  inter_delay_scale : float;
  inter_delay_cap : float;
  delay_shape : float;
  host_access_delay : float;
}

let default_params =
  {
    routers_per_host = 0.125;
    min_degree = 2;
    regions = 4;
    local_bias = 0.75;
    intra_delay_floor = 1.5;
    intra_delay_scale = 4.0;
    intra_delay_cap = 18.0;
    inter_delay_floor = 90.0;
    inter_delay_scale = 40.0;
    inter_delay_cap = 300.0;
    delay_shape = 1.4;
    host_access_delay = 1.0;
  }

let min_hosts = 3000

let link_delay p rng ~same_region =
  if same_region then
    Float.min p.intra_delay_cap
      (p.intra_delay_floor +. Prng.Dist.pareto rng ~shape:p.delay_shape ~scale:p.intra_delay_scale)
  else
    Float.min p.inter_delay_cap
      (p.inter_delay_floor +. Prng.Dist.pareto rng ~shape:p.delay_shape ~scale:p.inter_delay_scale)

let generate ?(params = default_params) ?backend ?pool ~hosts rng =
  let p = params in
  if hosts < min_hosts then
    invalid_arg
      (Printf.sprintf "Inet.generate: the Inet model needs at least %d hosts (got %d)" min_hosts
         hosts);
  let nr =
    let raw = int_of_float (p.routers_per_host *. float_of_int hosts) in
    max 200 (min 1500 raw)
  in
  let region = Array.init nr (fun _ -> Prng.Rng.int rng p.regions) in
  let core = max 3 (p.min_degree + 1) in
  let b = Graph.builder nr in
  (* endpoint multiset: picking a uniform element = degree-proportional
     router (the classic O(1) preferential-attachment trick). Real AS graphs
     peer mostly regionally, so with probability [local_bias] a newcomer
     keeps resampling until it finds a same-region target — that regional
     structure is exactly what distributed binning quantises. *)
  let ep = Array.make ((2 * nr * p.min_degree) + (core * core)) 0 in
  let ep_len = ref 0 in
  let add_endpoint v =
    ep.(!ep_len) <- v;
    incr ep_len
  in
  for u = 0 to core - 1 do
    for v = u + 1 to core - 1 do
      Graph.add_edge b u v (link_delay p rng ~same_region:(region.(u) = region.(v)));
      add_endpoint u;
      add_endpoint v
    done
  done;
  for v = core to nr - 1 do
    let wired = ref 0 in
    let attempts = ref 0 in
    while !wired < p.min_degree && !attempts < 400 do
      incr attempts;
      let want_local = Prng.Rng.float rng 1.0 < p.local_bias in
      let target =
        if want_local then begin
          (* bounded resampling for a same-region, degree-proportional peer *)
          let rec pick k =
            let c = ep.(Prng.Rng.int rng !ep_len) in
            if region.(c) = region.(v) || k = 0 then c else pick (k - 1)
          in
          pick 25
        end
        else ep.(Prng.Rng.int rng !ep_len)
      in
      if target <> v && not (Graph.has_edge b v target) then begin
        Graph.add_edge b v target (link_delay p rng ~same_region:(region.(v) = region.(target)));
        add_endpoint v;
        add_endpoint target;
        incr wired
      end
    done
  done;
  let graph = Graph.freeze b in
  let host_router = Array.init hosts (fun _ -> Prng.Rng.int rng nr) in
  let host_access = Array.make hosts p.host_access_delay in
  Latency.create ?backend ?pool ~router_graph:graph ~host_router ~host_access ()

let degree_histogram g =
  let tbl = Hashtbl.create 64 in
  for v = 0 to Graph.vertex_count g - 1 do
    let d = Graph.degree g v in
    Hashtbl.replace tbl d (1 + Option.value ~default:0 (Hashtbl.find_opt tbl d))
  done;
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Stdlib.compare a b)
