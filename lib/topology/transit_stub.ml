type params = {
  transit_domains : int;
  transit_per_domain : int;
  stubs_per_transit : int;
  routers_per_stub : int;
  intra_transit_delay : float;
  inter_transit_delay : float;
  transit_stub_delay : float;
  intra_stub_delay : float;
  host_access_delay : float;
  redundancy : float;
}

let default_params ~hosts =
  (* A small, dense backbone: GT-ITM transit domains are few and their
     routers richly connected, so a path crosses at most a couple of 100 ms
     transit links. This is what gives the paper its three clearly separated
     latency scales (same stub ~10 ms, same transit region ~50 ms, cross
     region >140 ms) — the structure distributed binning quantises. *)
  let transit_domains, transit_per_domain, stubs_per_transit, routers_per_stub =
    if hosts <= 1500 then (2, 2, 3, 7)
    else if hosts <= 4000 then (2, 2, 6, 9)
    else if hosts <= 6500 then (2, 2, 9, 11)
    else (2, 2, 12, 13)
  in
  {
    transit_domains;
    transit_per_domain;
    stubs_per_transit;
    routers_per_stub;
    intra_transit_delay = 100.0;
    inter_transit_delay = 100.0;
    transit_stub_delay = 20.0;
    intra_stub_delay = 5.0;
    host_access_delay = 1.0;
    redundancy = 0.35;
  }

let router_count p =
  let transit = p.transit_domains * p.transit_per_domain in
  transit + (transit * p.stubs_per_transit * p.routers_per_stub)

(* Connected random graph over the vertex slice [base, base+n): a uniform
   random recursive tree plus [redundancy * (n-1)] extra random edges. *)
let connect_domain builder rng ~base ~n ~delay ~redundancy =
  for i = 1 to n - 1 do
    let parent = Prng.Rng.int rng i in
    Graph.add_edge builder (base + i) (base + parent) delay
  done;
  let extras = int_of_float (redundancy *. float_of_int (n - 1)) in
  let attempts = ref 0 in
  let added = ref 0 in
  while !added < extras && !attempts < 20 * (extras + 1) && n >= 3 do
    incr attempts;
    let u = Prng.Rng.int rng n and v = Prng.Rng.int rng n in
    if u <> v && not (Graph.has_edge builder (base + u) (base + v)) then begin
      Graph.add_edge builder (base + u) (base + v) delay;
      incr added
    end
  done

let generate ?params ?backend ?pool ~hosts rng =
  let p = match params with Some p -> p | None -> default_params ~hosts in
  if hosts < 1 then invalid_arg "Transit_stub.generate: need at least one host";
  let transit_total = p.transit_domains * p.transit_per_domain in
  let stub_total = transit_total * p.stubs_per_transit in
  let nr = transit_total + (stub_total * p.routers_per_stub) in
  let b = Graph.builder nr in
  (* transit domains are cliques: routers [d * tpd, (d+1) * tpd) *)
  for d = 0 to p.transit_domains - 1 do
    let base = d * p.transit_per_domain in
    for i = 0 to p.transit_per_domain - 1 do
      for j = i + 1 to p.transit_per_domain - 1 do
        Graph.add_edge b (base + i) (base + j) p.intra_transit_delay
      done
    done
  done;
  (* top level: ring of transit domains plus chords, each inter-domain edge
     lands on a random router of each side *)
  let random_transit_router d = (d * p.transit_per_domain) + Prng.Rng.int rng p.transit_per_domain in
  for d = 0 to p.transit_domains - 1 do
    let d' = (d + 1) mod p.transit_domains in
    if p.transit_domains > 1 && (d < d' || p.transit_domains = 2) then
      Graph.add_edge b (random_transit_router d) (random_transit_router d') p.inter_transit_delay
  done;
  if p.transit_domains > 3 then begin
    (* one extra chord for path diversity across the backbone *)
    let d = Prng.Rng.int rng p.transit_domains in
    let d' = (d + (p.transit_domains / 2)) mod p.transit_domains in
    if d <> d' then
      Graph.add_edge b (random_transit_router d) (random_transit_router d') p.inter_transit_delay
  end;
  (* stub domains: stub s (0-based global) attaches to transit router s / stubs_per_transit *)
  for s = 0 to stub_total - 1 do
    let base = transit_total + (s * p.routers_per_stub) in
    connect_domain b rng ~base ~n:p.routers_per_stub ~delay:p.intra_stub_delay
      ~redundancy:p.redundancy;
    let transit_router = s / p.stubs_per_transit in
    let gateway = base + Prng.Rng.int rng p.routers_per_stub in
    Graph.add_edge b gateway transit_router p.transit_stub_delay
  done;
  let graph = Graph.freeze b in
  (* hosts on uniformly random stub routers *)
  let host_router =
    Array.init hosts (fun _ -> transit_total + Prng.Rng.int rng (stub_total * p.routers_per_stub))
  in
  let host_access = Array.make hosts p.host_access_delay in
  Latency.create ?backend ?pool ~router_graph:graph ~host_router ~host_access ()
