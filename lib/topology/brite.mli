(** BRITE-style topology model (Medina, Lakhina, Matta & Byers, MASCOTS'01).

    BRITE's router-level default combines Barabási–Albert incremental growth
    (preferential connectivity) with node placement on a Euclidean plane;
    link delays are proportional to geometric distance (signal propagation).
    We reproduce exactly that: routers appear one at a time at uniformly
    random plane coordinates, wire [m] links preferentially by degree, and
    every link's delay is [distance / plane_speed + delay_floor] ms.

    Geometric delays give a smoother latency continuum than transit-stub's
    three discrete scales, which is why the paper's HIERAS gain is smallest
    on BRITE (62% of Chord rather than 52%) — a shape our model preserves. *)

type params = {
  routers_per_host : float;
  m : int;  (** links per new router (BA parameter, BRITE default 2) *)
  plane_size : float;  (** side of the square placement plane *)
  plane_speed : float;  (** plane units per ms — converts distance to delay *)
  delay_floor : float;  (** ms added per link (processing/queueing) *)
  waxman_scale : float;
      (** locality of attachment: a degree-proportional candidate at distance
          [d] is accepted with probability [exp (-d / (waxman_scale *
          plane_size))] — BRITE's Waxman factor *)
  host_access_delay : float;
}

val default_params : params

val generate :
  ?params:params ->
  ?backend:Latency.backend ->
  ?pool:Parallel.Pool.t ->
  hosts:int ->
  Prng.Rng.t ->
  Latency.t
(** [backend] selects the oracle's storage strategy (default eager). *)
