type t = {
  graph : Graph.t;
  dist : float array array;
  host_router : int array;
  host_access : float array;
}

let create ?pool ~router_graph ~host_router ~host_access () =
  if Array.length host_router <> Array.length host_access then
    invalid_arg "Latency.create: host arrays differ in length";
  let nr = Graph.vertex_count router_graph in
  Array.iter
    (fun r -> if r < 0 || r >= nr then invalid_arg "Latency.create: router index out of range")
    host_router;
  if not (Graph.is_connected router_graph) then
    invalid_arg "Latency.create: router graph must be connected";
  let dist = Dijkstra.distance_matrix ?pool router_graph in
  { graph = router_graph; dist; host_router; host_access }

let hosts t = Array.length t.host_router
let routers t = Graph.vertex_count t.graph
let router_graph t = t.graph
let router_of_host t h = t.host_router.(h)
let access_delay t h = t.host_access.(h)

let host_latency t a b =
  if a = b then 0.0
  else
    t.host_access.(a) +. t.dist.(t.host_router.(a)).(t.host_router.(b)) +. t.host_access.(b)

let host_to_router t h r = t.host_access.(h) +. t.dist.(t.host_router.(h)).(r)
let router_latency t a b = t.dist.(a).(b)

let mean_host_latency t ?(samples = 20_000) rng =
  let n = hosts t in
  if n < 2 then 0.0
  else begin
    let acc = ref 0.0 in
    for _ = 1 to samples do
      let a = Prng.Rng.int rng n in
      let b = (a + 1 + Prng.Rng.int rng (n - 1)) mod n in
      acc := !acc +. host_latency t a b
    done;
    !acc /. float_of_int samples
  end
