(* Three storage backends behind one oracle type:

   - Eager: the full router distance matrix, stored as a single flat
     row-major float array (index [src * nr + dst]) — one unboxed
     allocation instead of nr boxed rows, no per-row pointer chase.
   - Lazy: per-row once-cells filled by single-source Dijkstra on first
     touch. A row is a pure function of the frozen graph, so when two
     domains race on the same cold row both compute bit-identical arrays;
     last writer wins and every reader sees a correct row. The cells are
     [Atomic.t] so the publication itself is well-defined under domains.
   - Auto: resolved to one of the above at creation time. *)

type backend = Eager | Lazy | Auto

let backend_name = function Eager -> "eager" | Lazy -> "lazy" | Auto -> "auto"

let backend_of_name s =
  match String.lowercase_ascii s with
  | "eager" -> Some Eager
  | "lazy" -> Some Lazy
  | "auto" -> Some Auto
  | _ -> None

type storage =
  | Flat of float array (* nr * nr, row-major *)
  | Rows of float array option Atomic.t array

type t = {
  graph : Graph.t;
  nr : int;
  storage : storage;
  host_router : int array;
  host_access : float array;
  hits : int array;
      (* single cell in its own allocation, so the hot-path write does not
         invalidate the cache line holding the record's read-only fields.
         Plain (non-atomic) increments: exact for sequential queries, lost
         updates possible — and harmless, it is a diagnostic — when several
         domains query concurrently. *)
}

let auto_router_threshold = 1024

let resolve backend ~nr ~host_router =
  match backend with
  | Eager | Lazy -> backend
  | Auto ->
      if nr > auto_router_threshold then Lazy
      else begin
        (* hosts covering few routers means most eager rows are dead weight:
           lookups only ever read rows of routers that host DHT nodes *)
        let seen = Array.make (max nr 1) false in
        let covered = ref 0 in
        Array.iter
          (fun r ->
            if not seen.(r) then begin
              seen.(r) <- true;
              incr covered
            end)
          host_router;
        if 2 * !covered < nr then Lazy else Eager
      end

let create ?(backend = Eager) ?pool ~router_graph ~host_router ~host_access () =
  if Array.length host_router <> Array.length host_access then
    invalid_arg "Latency.create: host arrays differ in length";
  let nr = Graph.vertex_count router_graph in
  Array.iter
    (fun r -> if r < 0 || r >= nr then invalid_arg "Latency.create: router index out of range")
    host_router;
  if not (Graph.is_connected router_graph) then
    invalid_arg "Latency.create: router graph must be connected";
  let storage =
    match resolve backend ~nr ~host_router with
    | Lazy -> Rows (Array.init nr (fun _ -> Atomic.make None))
    | Eager | Auto -> Flat (Dijkstra.distance_matrix_flat ?pool router_graph)
  in
  { graph = router_graph; nr; storage; host_router; host_access; hits = [| 0 |] }

let hosts t = Array.length t.host_router
let routers t = t.nr
let router_graph t = t.graph
let router_of_host t h = t.host_router.(h)
let access_delay t h = t.host_access.(h)
let effective_backend t = match t.storage with Flat _ -> Eager | Rows _ -> Lazy

(* [a] and [b] are valid router indices here (checked at creation for host
   attachments, at the public entry point for direct router queries). *)
let router_distance t a b =
  t.hits.(0) <- t.hits.(0) + 1;
  match t.storage with
  | Flat d -> d.((a * t.nr) + b)
  | Rows rows -> (
      match Atomic.get rows.(a) with
      | Some r -> r.(b)
      | None ->
          let r = Dijkstra.distances t.graph ~src:a in
          Atomic.set rows.(a) (Some r);
          r.(b))

let host_latency t a b =
  if a = b then 0.0
  else
    t.host_access.(a)
    +. router_distance t t.host_router.(a) t.host_router.(b)
    +. t.host_access.(b)

let host_to_router t h r =
  if r < 0 || r >= t.nr then invalid_arg "Latency.host_to_router: router index out of range";
  t.host_access.(h) +. router_distance t t.host_router.(h) r

let router_latency t a b =
  if a < 0 || a >= t.nr || b < 0 || b >= t.nr then
    invalid_arg "Latency.router_latency: router index out of range";
  router_distance t a b

type stats = {
  backend : string;
  routers : int;
  rows_computed : int;
  row_hits : int;
  resident_bytes : int;
}

(* header word + unboxed payload *)
let float_array_bytes len = 8 * (len + 1)

let stats t =
  let rows_computed, resident_bytes =
    match t.storage with
    | Flat d -> (t.nr, float_array_bytes (Array.length d))
    | Rows rows ->
        let computed = ref 0 in
        (* pointer array + one 2-word Atomic block per cell *)
        let bytes = ref (8 * (Array.length rows + 1)) in
        Array.iter
          (fun cell ->
            bytes := !bytes + 16;
            match Atomic.get cell with
            | Some r ->
                incr computed;
                (* Some box (2 words) + the row itself *)
                bytes := !bytes + 16 + float_array_bytes (Array.length r)
            | None -> ())
          rows;
        (!computed, !bytes)
  in
  {
    backend = backend_name (effective_backend t);
    routers = t.nr;
    rows_computed;
    row_hits = t.hits.(0);
    resident_bytes;
  }

let export_metrics ?(prefix = "oracle") t m =
  let st = stats t in
  let c name v = Obs.Metrics.set_counter (Obs.Metrics.counter m (prefix ^ "." ^ name)) v in
  c "rows_computed" st.rows_computed;
  c "row_hits" st.row_hits;
  c "resident_bytes" st.resident_bytes;
  let g name v = Obs.Metrics.set (Obs.Metrics.gauge m (prefix ^ "." ^ name)) v in
  g "routers" (float_of_int st.routers);
  g "hosts" (float_of_int (hosts t));
  g "lazy" (match effective_backend t with Lazy -> 1.0 | Eager | Auto -> 0.0)

let mean_host_latency t ?(samples = 20_000) rng =
  let n = hosts t in
  if n < 2 then 0.0
  else begin
    let acc = ref 0.0 in
    for _ = 1 to samples do
      let a = Prng.Rng.int rng n in
      let b = (a + 1 + Prng.Rng.int rng (n - 1)) mod n in
      acc := !acc +. host_latency t a b
    done;
    !acc /. float_of_int samples
  end
