(** GT-ITM Transit-Stub topology model (Zegura et al., INFOCOM'96) —
    the paper's primary network model.

    The Internet is modelled as a two-level hierarchy: a small set of
    {e transit domains} (backbones) whose routers interconnect densely, and
    many {e stub domains} (campus/ISP edge networks) hanging off transit
    routers. The paper's link delays are used by default: 100 ms for
    intra-transit (and inter-transit) links, 20 ms for stub-transit links and
    5 ms for intra-stub links, which yields the characteristic three-scale
    delay distribution that distributed binning exploits.

    DHT end-hosts attach to uniformly random stub routers through a short
    access link. *)

type params = {
  transit_domains : int;  (** number of backbone domains *)
  transit_per_domain : int;  (** routers per transit domain *)
  stubs_per_transit : int;  (** stub domains hanging off each transit router *)
  routers_per_stub : int;  (** routers per stub domain *)
  intra_transit_delay : float;  (** ms; paper: 100 *)
  inter_transit_delay : float;  (** ms between transit domains; 100 *)
  transit_stub_delay : float;  (** ms; paper: 20 *)
  intra_stub_delay : float;  (** ms; paper: 5 *)
  host_access_delay : float;  (** ms host-to-stub-router access link *)
  redundancy : float;
      (** extra random intra-domain edges as a fraction of the domain's
          spanning-tree edge count (adds path diversity) *)
}

val default_params : hosts:int -> params
(** Router counts scaled to the host count (roughly one stub router per ten
    hosts, in the discrete steps that also give the paper its 6000-vs-7000
    node configuration wobble). *)

val generate :
  ?params:params ->
  ?backend:Latency.backend ->
  ?pool:Parallel.Pool.t ->
  hosts:int ->
  Prng.Rng.t ->
  Latency.t
(** Build a connected transit-stub router graph, attach [hosts] end-hosts,
    and return the latency oracle ([backend] selects its storage strategy,
    default eager; the generated topology is the same for every backend). *)

val router_count : params -> int
(** Total routers the parameter set produces. *)
