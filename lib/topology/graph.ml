module Edge_key = struct
  type t = int * int

  let normalize u v = if u < v then (u, v) else (v, u)
end

type builder = {
  n : int;
  edges : (Edge_key.t, float) Hashtbl.t;
}

let builder n =
  if n < 0 then invalid_arg "Graph.builder: negative vertex count";
  { n; edges = Hashtbl.create (4 * max n 1) }

let add_edge b u v w =
  if u < 0 || u >= b.n || v < 0 || v >= b.n then invalid_arg "Graph.add_edge: vertex out of range";
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  if w < 0.0 then invalid_arg "Graph.add_edge: negative delay";
  let key = Edge_key.normalize u v in
  match Hashtbl.find_opt b.edges key with
  | Some w' when w' <= w -> ()
  | _ -> Hashtbl.replace b.edges key w

let has_edge b u v = Hashtbl.mem b.edges (Edge_key.normalize u v)

type t = {
  nv : int;
  ne : int;
  (* CSR: neighbors of v are adj.(off.(v) .. off.(v+1)-1) *)
  off : int array;
  adj : int array;
  w : float array;
}

let freeze b =
  let deg = Array.make b.n 0 in
  Hashtbl.iter
    (fun (u, v) _ ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    b.edges;
  let off = Array.make (b.n + 1) 0 in
  for v = 0 to b.n - 1 do
    off.(v + 1) <- off.(v) + deg.(v)
  done;
  let total = off.(b.n) in
  let adj = Array.make total 0 and w = Array.make total 0.0 in
  let cursor = Array.copy off in
  Hashtbl.iter
    (fun (u, v) d ->
      adj.(cursor.(u)) <- v;
      w.(cursor.(u)) <- d;
      cursor.(u) <- cursor.(u) + 1;
      adj.(cursor.(v)) <- u;
      w.(cursor.(v)) <- d;
      cursor.(v) <- cursor.(v) + 1)
    b.edges;
  (* sort each adjacency segment by neighbor index: [Hashtbl.iter] order is
     hash-function-dependent, and the frozen CSR layout must depend on the
     edge set alone — not on insertion order or the OCaml version's hash.
     Duplicate edges were collapsed above, so keys are unique per segment;
     insertion sort, segments are router-degree sized. *)
  for v = 0 to b.n - 1 do
    let lo = off.(v) in
    for i = lo + 1 to off.(v + 1) - 1 do
      let u = adj.(i) and d = w.(i) in
      let j = ref i in
      while !j > lo && adj.(!j - 1) > u do
        adj.(!j) <- adj.(!j - 1);
        w.(!j) <- w.(!j - 1);
        decr j
      done;
      adj.(!j) <- u;
      w.(!j) <- d
    done
  done;
  { nv = b.n; ne = Hashtbl.length b.edges; off; adj; w }

let vertex_count t = t.nv
let edge_count t = t.ne
let degree t v = t.off.(v + 1) - t.off.(v)

let iter_neighbors t v f =
  for i = t.off.(v) to t.off.(v + 1) - 1 do
    f t.adj.(i) t.w.(i)
  done

let fold_neighbors t v f init =
  let acc = ref init in
  iter_neighbors t v (fun u d -> acc := f !acc u d);
  !acc

let components t =
  let label = Array.make t.nv (-1) in
  let queue = Queue.create () in
  for start = 0 to t.nv - 1 do
    if label.(start) < 0 then begin
      label.(start) <- start;
      Queue.add start queue;
      while not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        iter_neighbors t v (fun u _ ->
            if label.(u) < 0 then begin
              label.(u) <- start;
              Queue.add u queue
            end)
      done
    end
  done;
  label

let is_connected t =
  if t.nv = 0 then false
  else Array.for_all (fun l -> l = 0) (components t)
