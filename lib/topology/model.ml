type kind = Transit_stub | Inet | Brite

let all = [ Transit_stub; Inet; Brite ]

let name = function Transit_stub -> "TS" | Inet -> "Inet" | Brite -> "BRITE"

let of_name s =
  match String.lowercase_ascii s with
  | "ts" | "transit-stub" | "transit_stub" | "gt-itm" -> Some Transit_stub
  | "inet" -> Some Inet
  | "brite" -> Some Brite
  | _ -> None

let min_hosts = function Inet -> Inet.min_hosts | Transit_stub | Brite -> 1

let build ?pool kind ~hosts rng =
  match kind with
  | Transit_stub -> Transit_stub.generate ?pool ~hosts rng
  | Inet -> Inet.generate ?pool ~hosts rng
  | Brite -> Brite.generate ?pool ~hosts rng
