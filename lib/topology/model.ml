type kind = Transit_stub | Inet | Brite

let all = [ Transit_stub; Inet; Brite ]

let name = function Transit_stub -> "TS" | Inet -> "Inet" | Brite -> "BRITE"

let of_name s =
  match String.lowercase_ascii s with
  | "ts" | "transit-stub" | "transit_stub" | "gt-itm" -> Some Transit_stub
  | "inet" -> Some Inet
  | "brite" -> Some Brite
  | _ -> None

let min_hosts = function Inet -> Inet.min_hosts | Transit_stub | Brite -> 1

let build ?backend ?pool kind ~hosts rng =
  match kind with
  | Transit_stub -> Transit_stub.generate ?backend ?pool ~hosts rng
  | Inet -> Inet.generate ?backend ?pool ~hosts rng
  | Brite -> Brite.generate ?backend ?pool ~hosts rng
