(** The latency oracle: pairwise end-host delays over a router topology.

    Topology generators emit a {e router} graph plus an attachment of DHT
    end-hosts to routers (with a small access-link delay). A host-to-host
    query is

    [latency a b = access a + D.(router a).(router b) + access b]

    where [D] is the router-to-router shortest-path matrix. This mirrors how
    p2psim-style simulators evaluate DHTs on GT-ITM-like topologies and is
    what keeps 10 000-host x 100 000-lookup experiments cheap.

    {2 Backends}

    How [D] is materialised is pluggable:

    - {!Eager} runs Dijkstra from every router up front and stores the full
      matrix as one flat row-major [float array] ([src * nr + dst]) —
      O(R{^2}) memory, O(1) queries with no per-row pointer chase.
    - {!Lazy} computes a row by single-source Dijkstra on first touch and
      memoizes it in a per-row once-cell. Lookups only ever read rows of
      routers that actually host DHT nodes, so build cost and memory scale
      with the {e touched} rows, not R{^2}. Safe under concurrent domain
      queries: a row is a pure function of the frozen graph, so a duplicate
      computation race writes bit-identical arrays.
    - {!Auto} picks lazy when the router count exceeds an internal threshold
      (1024) or when hosts cover fewer than half the routers, eager
      otherwise.

    Every backend returns bit-identical query results — the choice affects
    time and memory only. *)

type backend = Eager | Lazy | Auto

val backend_name : backend -> string
(** "eager", "lazy" or "auto". *)

val backend_of_name : string -> backend option
(** Case-insensitive inverse of {!backend_name}. *)

type t

val create :
  ?backend:backend ->
  ?pool:Parallel.Pool.t ->
  router_graph:Graph.t ->
  host_router:int array ->
  host_access:float array ->
  unit ->
  t
(** Builds an oracle (default backend {!Eager}, preserving the historical
    semantics). With an eager (or eager-resolved auto) backend the router
    distance matrix is precomputed here — the dominant cost, parallelized
    over sources when a pool is given; lazy creation is O(R). [host_router.(h)]
    is the router host [h] attaches to, [host_access.(h)] its access-link
    delay (ms). Raises [Invalid_argument] on length mismatch or a
    disconnected router graph. *)

val hosts : t -> int
val routers : t -> int
val router_graph : t -> Graph.t
val router_of_host : t -> int -> int
val access_delay : t -> int -> float

val effective_backend : t -> backend
(** {!Eager} or {!Lazy} — what {!Auto} resolved to at creation. *)

val host_latency : t -> int -> int -> float
(** One-way delay (ms) between two hosts. Zero between a host and itself. *)

val host_to_router : t -> int -> int -> float
(** Delay from a host to an arbitrary router — what a landmark "ping"
    measures when landmarks are well-known routers. *)

val router_latency : t -> int -> int -> float

(** {2 Instrumentation} *)

type stats = {
  backend : string;  (** effective backend: "eager" or "lazy" *)
  routers : int;
  rows_computed : int;
      (** distance-matrix rows materialised so far (always [routers] for
          eager; the number of touched rows for lazy) *)
  row_hits : int;
      (** row lookups served. Exact for sequential queries; concurrent
          domain queries may lose increments (plain counter, kept off the
          atomic path on purpose — it is a diagnostic). *)
  resident_bytes : int;
      (** approximate heap footprint of the distance storage *)
}

val stats : t -> stats

val export_metrics : ?prefix:string -> t -> Obs.Metrics.t -> unit
(** Mirror {!stats} into a metrics registry (default prefix ["oracle"]):
    counters [<prefix>.rows_computed], [.row_hits], [.resident_bytes];
    gauges [<prefix>.routers], [.hosts] and [.lazy] (1.0 when the effective
    backend is {!Lazy}). Idempotent: re-exporting overwrites. *)

val mean_host_latency : t -> ?samples:int -> Prng.Rng.t -> float
(** Monte-Carlo estimate of the mean delay between two random distinct
    hosts (diagnostics; default 20 000 samples).

    The estimator draws [samples] ordered pairs — [a] uniform over hosts,
    [b] uniform over the remaining hosts — and averages {!host_latency} over
    them. Every pair is equally likely, so the estimate is unbiased for the
    all-pairs mean, with standard error [stddev / sqrt samples]; the draw
    sequence is a pure function of the RNG state, so a fixed seed yields a
    bit-identical estimate. *)
