(** The latency oracle: pairwise end-host delays over a router topology.

    Topology generators emit a {e router} graph plus an attachment of DHT
    end-hosts to routers (with a small access-link delay). The oracle
    precomputes the router-to-router distance matrix once; a host-to-host
    query is then O(1):

    [latency a b = access a + D.(router a).(router b) + access b]

    This mirrors how p2psim-style simulators evaluate DHTs on GT-ITM-like
    topologies and is what keeps 10 000-host x 100 000-lookup experiments
    cheap. *)

type t

val create :
  ?pool:Parallel.Pool.t ->
  router_graph:Graph.t ->
  host_router:int array ->
  host_access:float array ->
  unit ->
  t
(** Precomputes the router distance matrix — the dominant cost of building
    an oracle, parallelized over sources when a pool is given (results are
    identical for any pool width). [host_router.(h)] is the router host [h]
    attaches to, [host_access.(h)] its access-link delay (ms). Raises
    [Invalid_argument] on length mismatch or a disconnected router graph. *)

val hosts : t -> int
val routers : t -> int
val router_graph : t -> Graph.t
val router_of_host : t -> int -> int
val access_delay : t -> int -> float

val host_latency : t -> int -> int -> float
(** One-way delay (ms) between two hosts. Zero between a host and itself. *)

val host_to_router : t -> int -> int -> float
(** Delay from a host to an arbitrary router — what a landmark "ping"
    measures when landmarks are well-known routers. *)

val router_latency : t -> int -> int -> float

val mean_host_latency : t -> ?samples:int -> Prng.Rng.t -> float
(** Monte-Carlo estimate of the mean delay between two random distinct
    hosts (diagnostics; default 20 000 samples). *)
