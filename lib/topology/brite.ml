type params = {
  routers_per_host : float;
  m : int;
  plane_size : float;
  plane_speed : float;
  delay_floor : float;
  waxman_scale : float;
  host_access_delay : float;
}

let default_params =
  {
    routers_per_host = 0.125;
    m = 4;
    plane_size = 1000.0;
    plane_speed = 6.0;
    delay_floor = 1.0;
    waxman_scale = 0.08;
    host_access_delay = 1.0;
  }

let generate ?(params = default_params) ?backend ?pool ~hosts rng =
  let p = params in
  if hosts < 1 then invalid_arg "Brite.generate: need at least one host";
  let nr =
    let raw = int_of_float (p.routers_per_host *. float_of_int hosts) in
    max 100 (min 1500 raw)
  in
  let xs = Array.init nr (fun _ -> Prng.Rng.float rng p.plane_size) in
  let ys = Array.init nr (fun _ -> Prng.Rng.float rng p.plane_size) in
  let dist u v =
    let dx = xs.(u) -. xs.(v) and dy = ys.(u) -. ys.(v) in
    sqrt ((dx *. dx) +. (dy *. dy))
  in
  let delay u v = p.delay_floor +. (dist u v /. p.plane_speed) in
  let lambda = p.waxman_scale *. p.plane_size in
  let core = p.m + 1 in
  let b = Graph.builder nr in
  let ep = Array.make ((2 * nr * p.m) + (core * core)) 0 in
  let ep_len = ref 0 in
  let add_endpoint v =
    ep.(!ep_len) <- v;
    incr ep_len
  in
  for u = 0 to core - 1 do
    for v = u + 1 to core - 1 do
      Graph.add_edge b u v (delay u v);
      add_endpoint u;
      add_endpoint v
    done
  done;
  (* BRITE's incremental growth combines preferential connectivity with
     Waxman locality: a candidate drawn degree-proportionally is accepted
     with probability exp(-d / lambda), so new routers mostly wire to nearby
     well-connected ones. Without the locality factor, geometric neighbours
     would be topologically distant and no latency clustering would exist. *)
  for v = core to nr - 1 do
    let wired = ref 0 in
    let attempts = ref 0 in
    while !wired < p.m && !attempts < 600 do
      incr attempts;
      let target = ep.(Prng.Rng.int rng !ep_len) in
      let accept =
        (* force acceptance after many rejections to guarantee progress *)
        !attempts > 400
        || Prng.Rng.float rng 1.0 < exp (-.dist v target /. lambda)
      in
      if accept && target <> v && not (Graph.has_edge b v target) then begin
        Graph.add_edge b v target (delay v target);
        add_endpoint v;
        add_endpoint target;
        incr wired
      end
    done
  done;
  let graph = Graph.freeze b in
  let host_router = Array.init hosts (fun _ -> Prng.Rng.int rng nr) in
  let host_access = Array.make hosts p.host_access_delay in
  Latency.create ?backend ?pool ~router_graph:graph ~host_router ~host_access ()
