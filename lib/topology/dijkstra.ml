(* Array-based binary min-heap of (distance, vertex). Stale entries are
   skipped on pop (lazy deletion), the standard trick that avoids decrease-key. *)
module Heap = struct
  type t = {
    mutable dist : float array;
    mutable vert : int array;
    mutable size : int;
  }

  let create cap = { dist = Array.make (max cap 1) 0.0; vert = Array.make (max cap 1) 0; size = 0 }

  let grow h =
    let cap = Array.length h.dist in
    let dist = Array.make (2 * cap) 0.0 and vert = Array.make (2 * cap) 0 in
    Array.blit h.dist 0 dist 0 h.size;
    Array.blit h.vert 0 vert 0 h.size;
    h.dist <- dist;
    h.vert <- vert

  let swap h i j =
    let d = h.dist.(i) and v = h.vert.(i) in
    h.dist.(i) <- h.dist.(j);
    h.vert.(i) <- h.vert.(j);
    h.dist.(j) <- d;
    h.vert.(j) <- v

  let push h d v =
    if h.size = Array.length h.dist then grow h;
    h.dist.(h.size) <- d;
    h.vert.(h.size) <- v;
    let i = ref h.size in
    h.size <- h.size + 1;
    while !i > 0 && h.dist.((!i - 1) / 2) > h.dist.(!i) do
      swap h !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let pop h =
    if h.size = 0 then None
    else begin
      let d = h.dist.(0) and v = h.vert.(0) in
      h.size <- h.size - 1;
      if h.size > 0 then begin
        h.dist.(0) <- h.dist.(h.size);
        h.vert.(0) <- h.vert.(h.size);
        let i = ref 0 in
        let continue = ref true in
        while !continue do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let smallest = ref !i in
          if l < h.size && h.dist.(l) < h.dist.(!smallest) then smallest := l;
          if r < h.size && h.dist.(r) < h.dist.(!smallest) then smallest := r;
          if !smallest <> !i then begin
            swap h !i !smallest;
            i := !smallest
          end
          else continue := false
        done
      end;
      Some (d, v)
    end
end

let distances_with_prev g ~src =
  let n = Graph.vertex_count g in
  let dist = Array.make n infinity in
  let prev = Array.make n (-1) in
  let settled = Array.make n false in
  let heap = Heap.create 64 in
  dist.(src) <- 0.0;
  Heap.push heap 0.0 src;
  let rec loop () =
    match Heap.pop heap with
    | None -> ()
    | Some (d, v) ->
        (* a popped entry is stale if a shorter path to [v] was pushed after
           it; [d > dist.(v)] catches those without touching [settled], which
           still guards equal-distance duplicates *)
        if d <= dist.(v) && not settled.(v) then begin
          settled.(v) <- true;
          Graph.iter_neighbors g v (fun u w ->
              let nd = d +. w in
              if nd < dist.(u) then begin
                dist.(u) <- nd;
                prev.(u) <- v;
                Heap.push heap nd u
              end)
        end;
        loop ()
  in
  loop ();
  (dist, prev)

let distances g ~src = fst (distances_with_prev g ~src)

let distance_matrix ?(pool = Parallel.Pool.sequential) g =
  let n = Graph.vertex_count g in
  (* each row is an independent single-source run writing its own slot, so
     the matrix is bit-identical for any pool width *)
  let m = Array.make n [||] in
  Parallel.Pool.parallel_for pool ~n (fun src -> m.(src) <- distances g ~src);
  m

let distance_matrix_flat ?(pool = Parallel.Pool.sequential) g =
  let n = Graph.vertex_count g in
  let m = Array.make (n * n) infinity in
  (* rows are disjoint slices of one flat array, so parallel fills never
     alias; the content is bit-identical for any pool width *)
  Parallel.Pool.parallel_for pool ~n (fun src ->
      let row = distances g ~src in
      Array.blit row 0 m (src * n) n);
  m

let path g ~src ~dst =
  let dist, prev = distances_with_prev g ~src in
  if dist.(dst) = infinity then None
  else begin
    let rec collect v acc = if v = src then src :: acc else collect prev.(v) (v :: acc) in
    Some (collect dst [])
  end
