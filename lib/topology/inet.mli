(** Inet-style AS-level topology model (Jin, Chen & Jamin, U. Michigan).

    Inet generates graphs whose degree distribution follows the power law
    observed in BGP AS maps. We reproduce the model's essential properties
    with degree-driven preferential attachment: a small fully-meshed core is
    grown one router at a time, each newcomer wiring [min_degree] links to
    routers sampled proportionally to their current degree (implemented by
    sampling uniformly from the list of edge endpoints).

    Delays carry the regional structure of the real AS graph: every router
    belongs to one of [regions] regions (continents/economies); peerings are
    mostly regional (a newcomer resamples for a same-region target with
    probability [local_bias]), intra-region links are cheap and heavy-tailed,
    inter-region links expensive. This bimodal structure is what lets
    distributed binning cluster nodes — exactly the property the paper's
    Inet experiments rely on.

    Like the real Inet tool — which refuses to generate graphs below 3037
    nodes, the number of ASes in the Nov 1997 snapshot — {!generate} rejects
    host counts under [min_hosts]; the paper's Inet curves likewise start at
    3000 nodes. *)

type params = {
  routers_per_host : float;  (** router count = clamp(hosts * this, 200, 1500) *)
  min_degree : int;  (** edges added per new router (Inet default 2) *)
  regions : int;  (** number of latency regions *)
  local_bias : float;  (** probability a new link prefers a same-region peer *)
  intra_delay_floor : float;  (** ms *)
  intra_delay_scale : float;  (** Pareto scale of the variable intra part *)
  intra_delay_cap : float;
  inter_delay_floor : float;
  inter_delay_scale : float;
  inter_delay_cap : float;
  delay_shape : float;  (** Pareto tail exponent *)
  host_access_delay : float;
}

val default_params : params

val min_hosts : int
(** 3000, mirroring the Inet tool's minimum. *)

val generate :
  ?params:params ->
  ?backend:Latency.backend ->
  ?pool:Parallel.Pool.t ->
  hosts:int ->
  Prng.Rng.t ->
  Latency.t
(** Raises [Invalid_argument] if [hosts < min_hosts]. [backend] selects the
    oracle's storage strategy (default eager). *)

val degree_histogram : Graph.t -> (int * int) list
(** [(degree, count)] pairs, ascending — used by tests to check the power-law
    tail (a handful of very-high-degree routers, many degree-[min_degree]
    ones). *)
