(** Replicated key-value storage over the message protocols (DESIGN.md
    §15).

    The overlay routes; this module makes it {e store}. Objects live at
    the key's owner — the node whose [(predecessor, self]] arc contains
    the key — with copies on the owner's first [r - 1] live successors,
    DistHash-style successor-list replication. Everything is driven by
    the same discrete-event engine as the protocols themselves: [put],
    [get] and [delete] are RPCs routed to the owner via the protocol's
    own lookup path, replication legs are engine sends labelled with the
    store {!Obs.Netspan.kind}s, and re-replication is a periodic scan
    that re-derives every entry's duty from the protocol's {e current}
    pointers — so membership changes through the existing
    join/leave/[Engine.kill] paths trigger repair without any extra
    hooks into the protocols.

    {2 Versioning}

    Entries carry a version [(seq, origin_node)]: [seq] is assigned by
    the owner (previous [seq + 1], so overwrites through the owner are
    totally ordered) and [origin_node] is the client address,
    tie-breaking concurrent same-[seq] writes deterministically (higher
    address wins). A replica only ever adopts a strictly newer version,
    and read-repair on [get] pushes the newest version back over stale
    or missing replicas — so a repaired replica set is bit-identical to
    a freshly replicated one, which [test/test_store.ml] checks
    literally.

    {2 The repair scan}

    Every [repair_every] ms a god-event scans tracked nodes in address
    order and every held key in id order (a deterministic order, so runs
    are byte-stable): an entry whose key falls in the node's own arc is
    (re-)owned and its replicas refreshed (lease renewal); an owned
    entry whose key no longer falls in the arc is handed off to the
    routed owner (converging after joins); a replica that is neither
    owned nor refreshed for [lease_rounds] scans is pruned. After the
    protocol's pointers converge, every key therefore sits on exactly
    [min r live] nodes — the owner plus its first [r - 1] successors —
    which the property suite checks against the analytic oracle.

    Deletions have no tombstones: a delete removes the entry from the
    owner and its current replicas, and any copy that missed the message
    ages out with its lease. A [get] racing that window can transiently
    resurrect the value — the trade-off is documented, not hidden. *)

(** {2 Substrates} *)

type substrate = {
  sub_name : string;  (** ["chord"] or ["hieras"] — report labels *)
  engine : Simnet.Engine.t;
  space : Hashid.Id.space;
  lookup : origin:int -> key:Hashid.Id.t -> (int option -> unit) -> unit;
      (** route to the owner's address; [None] after protocol retries *)
  node_id : int -> Hashid.Id.t;
  predecessor : int -> int option;  (** global-ring predecessor *)
  successors : int -> int list;  (** global-ring successor list *)
  is_member : int -> bool;
  live_members : unit -> int list;
}
(** Uniform view of a message protocol — the same record-of-closures
    shape the soak uses, so the store is written once and instantiated
    over both the flat and the layered overlay (the conformance
    contract). HIERAS binds the [~layer:1] (global) pointers: ownership
    is a global-ring notion; locality rings only accelerate the route
    to it. *)

val chord_substrate : Chord.Protocol.t -> substrate
val hieras_substrate : Hieras.Hprotocol.t -> substrate

(** {2 Configuration} *)

type config = {
  replication : int;  (** r >= 1: the owner plus [r - 1] successor copies *)
  repair_every : float;  (** ms between re-replication scans *)
  lease_rounds : int;  (** scans without a refresh before a replica is pruned *)
  rpc_timeout : float;  (** ms before a store RPC leg is considered lost *)
  rpc_retries : int;  (** client-side retries of a whole routed operation *)
}

val default_config : config
(** r 3, 1 s scans, 4-round leases, 2 s timeouts, 2 retries. *)

val validate : config -> (unit, string) result

(** {2 Store instances} *)

type t

val create : config -> substrate -> t
(** Create the store and start its repair scan on the substrate's
    engine. The scan is a perpetual god-event loop: drive the engine
    with [run ~until], not [run_until_quiet]. *)

val config : t -> config
val substrate : t -> substrate

val track : t -> int -> unit
(** Declare [addr] a storage node (idempotent). Nodes are also tracked
    implicitly when they first receive a store RPC; tracking up front
    merely lets the repair scan see them from the start. *)

(** {2 Versioned entries} *)

type version = { vseq : int; vorigin : int }

val version_newer : version -> version -> bool
(** [version_newer a b]: does [a] supersede [b]? Higher [vseq] wins,
    ties break to the higher [vorigin]. *)

type entry = { value : string; bytes : int; version : version }
(** [bytes] is the nominal object size carried by the workload (the
    cache tier budgets with it); [String.length value] when the caller
    doesn't say. *)

(** {2 Operations}

    All three route to the owner from [origin] (which must be a live
    member), retry [rpc_retries] times on timeout, and deliver exactly
    one callback. *)

type put_result = { p_owner : int; p_replicas : int; p_version : version }
(** [p_replicas] counts the owner plus every replica that acknowledged
    before the owner replied — [min r live] on a healthy network. *)

val put :
  t -> origin:int -> key:Hashid.Id.t -> value:string -> ?bytes:int -> (put_result option -> unit) -> unit
(** The owner stores, pushes to its first [r - 1] live successors, and
    acknowledges only once every pushed replica answered (or timed out)
    — an acknowledged put is durably replicated, which the availability
    property relies on. [None] after all retries fail. *)

type get_result = { g_value : string; g_bytes : int; g_version : version; g_owner : int }

type get_outcome =
  | Found of get_result
  | Absent  (** the owner answered: no such key *)
  | Unreachable  (** routing or RPC failure after all retries *)

val get : t -> origin:int -> key:Hashid.Id.t -> (get_outcome -> unit) -> unit
(** The owner serves its copy and then read-repairs: replicas are
    probed, stale or missing ones re-pushed, and a probe revealing a
    {e newer} version than the owner's is adopted. An owner that lacks
    the key entirely probes its replicas {e before} answering, so a
    freshly promoted owner serves the surviving copies rather than
    [Absent]. *)

val delete : t -> origin:int -> key:Hashid.Id.t -> (bool option -> unit) -> unit
(** [Some existed] once the owner removed its copy and told its
    replicas; [None] on routing/RPC failure. *)

(** {2 Introspection (tests, experiments)} *)

val holders : t -> Hashid.Id.t -> int list
(** Live member addresses currently holding the key, ascending — the
    replica set the property suite compares against the oracle. *)

val entry_on : t -> int -> Hashid.Id.t -> entry option
val keys_on : t -> int -> Hashid.Id.t list
(** Keys held by one node, ascending. *)

val items_live : t -> int
(** Entries across live members (a key on three nodes counts three). *)

val forget : t -> int -> Hashid.Id.t -> unit
(** Test hook: silently drop one node's copy (a lost disk block) —
    read-repair and the scan must restore it. *)

val tamper : t -> int -> Hashid.Id.t -> entry -> unit
(** Test hook: overwrite one node's copy verbatim (a stale or corrupt
    replica) — version comparison must repair it. *)

(** {2 Accounting} *)

val puts : t -> int
val puts_acked : t -> int
val gets : t -> int
val gets_found : t -> int
val gets_absent : t -> int
val gets_failed : t -> int
val deletes : t -> int
val replicate_msgs : t -> int
val handoffs : t -> int
val promotions : t -> int
val pruned : t -> int
val read_repairs : t -> int
val repair_rounds : t -> int

val export_metrics : ?prefix:string -> t -> Obs.Metrics.t -> unit
(** Counters [<prefix>.puts], [.puts_acked], [.gets], [.gets_found],
    [.gets_absent], [.gets_failed], [.deletes], [.replicate_msgs],
    [.handoffs], [.promotions], [.pruned], [.read_repairs],
    [.repair_rounds] and gauge [.items_live] (default prefix
    ["store"]). Idempotent. *)
