(** Per-node web-cache tier over the store (DESIGN.md §15).

    The ROADMAP's web-cache target, in miniature: each node keeps a
    bounded cache of recently fetched objects so that zipf-skewed
    request streams are served locally instead of re-routing every get
    across the overlay. Bounded twice — by entry count and by byte
    budget (object sizes come from the workload) — with TTL expiry and
    LRU eviction, all deterministic: recency ties break on insertion
    order, never on hashing or wall clock.

    Hotspot detection keeps an exponentially decayed access rate per
    cached object: each hit multiplies the stored rate by
    [0.5^(dt / half_life)] before adding 1, so a burst fades with a
    configurable half-life instead of being remembered forever. Objects
    whose decayed rate crosses [hot_threshold] are the hot set — the
    cache statistic the experiment reports to show skew concentrating
    load, the phenomenon the hierarchical overlay is meant to absorb. *)

type config = {
  capacity_entries : int;  (** max cached objects (>= 1) *)
  capacity_bytes : int;  (** max total object bytes (>= 1) *)
  ttl_ms : float;  (** entry lifetime; [<= 0] disables expiry *)
  hot_threshold : float;  (** decayed rate above which an object is hot; [<= 0] disables *)
  decay_half_life_ms : float;  (** half-life of the access rate (> 0) *)
}

val default_config : config
(** 64 entries, 256 KiB, 30 s TTL, hot at rate 4 with a 5 s half-life. *)

val validate : config -> (unit, string) result

type t

val create : config -> t

val find : t -> now:float -> Hashid.Id.t -> (string * int) option
(** Serve [(value, bytes)] from cache, bumping recency and the decayed
    access rate. Expired entries are evicted on touch and count as
    misses. *)

val insert : t -> now:float -> Hashid.Id.t -> value:string -> bytes:int -> unit
(** Cache an object fetched from the store, evicting LRU entries until
    both budgets hold. An object larger than the byte budget is not
    cached at all. Re-inserting an existing key refreshes value, TTL and
    recency. *)

val invalidate : t -> Hashid.Id.t -> unit
(** Drop one key (a delete observed by the client). *)

val entries : t -> int
val bytes_used : t -> int
val hits : t -> int
val misses : t -> int
val evictions : t -> int
(** LRU evictions (capacity pressure, either budget). *)

val expirations : t -> int
(** TTL evictions (on touch or while making room). *)

val hot_now : t -> now:float -> int
(** Cached objects whose decayed rate currently exceeds the threshold. *)

val hot_ever : t -> int
(** Distinct objects that ever crossed the threshold while cached. *)

val export_metrics : ?prefix:string -> t -> Obs.Metrics.t -> unit
(** Counters [<prefix>.hits], [.misses], [.evictions], [.expirations],
    [.hot_ever]; gauges [.entries] and [.bytes] (default prefix
    ["cache"]). Idempotent. *)
