module Id = Hashid.Id

type config = {
  capacity_entries : int;
  capacity_bytes : int;
  ttl_ms : float;
  hot_threshold : float;
  decay_half_life_ms : float;
}

let default_config =
  {
    capacity_entries = 64;
    capacity_bytes = 256 * 1024;
    ttl_ms = 30_000.0;
    hot_threshold = 4.0;
    decay_half_life_ms = 5_000.0;
  }

let validate cfg =
  if cfg.capacity_entries < 1 then Error "cache entry capacity must be >= 1"
  else if cfg.capacity_bytes < 1 then Error "cache byte capacity must be >= 1"
  else if cfg.decay_half_life_ms <= 0.0 then Error "decay half-life must be positive"
  else Ok ()

type slot = {
  mutable value : string;
  mutable bytes : int;
  mutable inserted : float;  (* TTL clock *)
  mutable used : int;  (* recency: global touch sequence, strictly increasing *)
  mutable rate : float;  (* decayed access rate *)
  mutable rate_at : float;  (* instant [rate] was last decayed to *)
  mutable was_hot : bool;
}

type t = {
  cfg : config;
  slots : (Id.t, slot) Hashtbl.t;
  mutable seq : int;  (* touch/insertion counter — the deterministic tiebreak *)
  mutable used_bytes : int;
  mutable n_hits : int;
  mutable n_misses : int;
  mutable n_evictions : int;
  mutable n_expirations : int;
  mutable n_hot_ever : int;
}

let create cfg =
  (match validate cfg with Ok () -> () | Error msg -> invalid_arg ("Cache.create: " ^ msg));
  {
    cfg;
    slots = Hashtbl.create 64;
    seq = 0;
    used_bytes = 0;
    n_hits = 0;
    n_misses = 0;
    n_evictions = 0;
    n_expirations = 0;
    n_hot_ever = 0;
  }

let next_seq t =
  let s = t.seq in
  t.seq <- s + 1;
  s

let expired t ~now slot = t.cfg.ttl_ms > 0.0 && now -. slot.inserted > t.cfg.ttl_ms

let remove t key slot =
  t.used_bytes <- t.used_bytes - slot.bytes;
  Hashtbl.remove t.slots key

let decayed_rate t ~now slot =
  slot.rate *. Float.exp (-.Float.log 2.0 *. (now -. slot.rate_at) /. t.cfg.decay_half_life_ms)

let touch_rate t ~now slot =
  slot.rate <- decayed_rate t ~now slot +. 1.0;
  slot.rate_at <- now;
  if t.cfg.hot_threshold > 0.0 && slot.rate > t.cfg.hot_threshold && not slot.was_hot then begin
    slot.was_hot <- true;
    t.n_hot_ever <- t.n_hot_ever + 1
  end

let find t ~now key =
  match Hashtbl.find_opt t.slots key with
  | None ->
      t.n_misses <- t.n_misses + 1;
      None
  | Some slot ->
      if expired t ~now slot then begin
        remove t key slot;
        t.n_expirations <- t.n_expirations + 1;
        t.n_misses <- t.n_misses + 1;
        None
      end
      else begin
        slot.used <- next_seq t;
        touch_rate t ~now slot;
        t.n_hits <- t.n_hits + 1;
        Some (slot.value, slot.bytes)
      end

(* The LRU victim: smallest touch sequence. The sequence is globally unique,
   so the scan has a single minimum — no hash-order dependence. *)
let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key slot acc ->
        match acc with
        | Some (_, best) when best.used <= slot.used -> acc
        | _ -> Some (key, slot))
      t.slots None
  in
  match victim with
  | None -> ()
  | Some (key, slot) ->
      remove t key slot;
      t.n_evictions <- t.n_evictions + 1

let insert t ~now key ~value ~bytes =
  if bytes <= t.cfg.capacity_bytes then begin
    (match Hashtbl.find_opt t.slots key with Some old -> remove t key old | None -> ());
    (* make room: sweep expired entries first, then LRU-evict *)
    if t.cfg.ttl_ms > 0.0 then begin
      let dead =
        Hashtbl.fold (fun k s acc -> if expired t ~now s then (k, s) :: acc else acc) t.slots []
      in
      List.iter
        (fun (k, s) ->
          remove t k s;
          t.n_expirations <- t.n_expirations + 1)
        dead
    end;
    while Hashtbl.length t.slots >= t.cfg.capacity_entries || t.used_bytes + bytes > t.cfg.capacity_bytes do
      evict_lru t
    done;
    Hashtbl.add t.slots key
      {
        value;
        bytes;
        inserted = now;
        used = next_seq t;
        rate = 1.0;
        rate_at = now;
        was_hot = false;
      };
    t.used_bytes <- t.used_bytes + bytes
  end

let invalidate t key =
  match Hashtbl.find_opt t.slots key with None -> () | Some slot -> remove t key slot

let entries t = Hashtbl.length t.slots
let bytes_used t = t.used_bytes
let hits t = t.n_hits
let misses t = t.n_misses
let evictions t = t.n_evictions
let expirations t = t.n_expirations

let hot_now t ~now =
  if t.cfg.hot_threshold <= 0.0 then 0
  else
    Hashtbl.fold
      (fun _ slot acc -> if decayed_rate t ~now slot > t.cfg.hot_threshold then acc + 1 else acc)
      t.slots 0

let hot_ever t = t.n_hot_ever

let export_metrics ?(prefix = "cache") t m =
  let c name v = Obs.Metrics.set_counter (Obs.Metrics.counter m (prefix ^ "." ^ name)) v in
  c "hits" t.n_hits;
  c "misses" t.n_misses;
  c "evictions" t.n_evictions;
  c "expirations" t.n_expirations;
  c "hot_ever" t.n_hot_ever;
  Obs.Metrics.set (Obs.Metrics.gauge m (prefix ^ ".entries")) (float_of_int (entries t));
  Obs.Metrics.set (Obs.Metrics.gauge m (prefix ^ ".bytes")) (float_of_int t.used_bytes)
