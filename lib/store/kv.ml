module Id = Hashid.Id
module Engine = Simnet.Engine
module Netspan = Obs.Netspan

type substrate = {
  sub_name : string;
  engine : Engine.t;
  space : Id.space;
  lookup : origin:int -> key:Id.t -> (int option -> unit) -> unit;
  node_id : int -> Id.t;
  predecessor : int -> int option;
  successors : int -> int list;
  is_member : int -> bool;
  live_members : unit -> int list;
}

let chord_substrate c =
  {
    sub_name = "chord";
    engine = Chord.Protocol.engine c;
    space = (Chord.Protocol.config c).Chord.Protocol.space;
    lookup =
      (fun ~origin ~key k ->
        Chord.Protocol.lookup c ~origin ~key (fun out ->
            k (Option.map (fun o -> o.Chord.Protocol.owner_addr) out)));
    node_id = (fun a -> Chord.Protocol.node_id c a);
    predecessor = (fun a -> Chord.Protocol.predecessor_addr c a);
    successors = (fun a -> Chord.Protocol.successor_list_addrs c a);
    is_member = (fun a -> Chord.Protocol.is_member c a);
    live_members = (fun () -> Chord.Protocol.live_members c);
  }

(* Ownership is a global-ring notion; HIERAS binds its layer-1 pointers.
   The locality rings still matter — they are what the lookup path uses. *)
let hieras_substrate h =
  {
    sub_name = "hieras";
    engine = Hieras.Hprotocol.engine h;
    space = (Hieras.Hprotocol.config h).Hieras.Hprotocol.space;
    lookup =
      (fun ~origin ~key k ->
        Hieras.Hprotocol.lookup h ~origin ~key (fun out ->
            k (Option.map (fun o -> o.Hieras.Hprotocol.owner_addr) out)));
    node_id = (fun a -> Hieras.Hprotocol.node_id h a);
    predecessor = (fun a -> Hieras.Hprotocol.predecessor_addr h a ~layer:1);
    successors = (fun a -> Hieras.Hprotocol.successor_list_addrs h a ~layer:1);
    is_member = (fun a -> Hieras.Hprotocol.is_member h a);
    live_members = (fun () -> Hieras.Hprotocol.live_members h);
  }

type config = {
  replication : int;
  repair_every : float;
  lease_rounds : int;
  rpc_timeout : float;
  rpc_retries : int;
}

let default_config =
  { replication = 3; repair_every = 1_000.0; lease_rounds = 4; rpc_timeout = 2_000.0; rpc_retries = 2 }

let validate cfg =
  if cfg.replication < 1 then Error "replication factor must be >= 1"
  else if cfg.repair_every <= 0.0 then Error "repair period must be positive"
  else if cfg.lease_rounds < 1 then Error "lease must last at least one repair round"
  else if cfg.rpc_timeout <= 0.0 then Error "rpc timeout must be positive"
  else if cfg.rpc_retries < 0 then Error "rpc retries must be >= 0"
  else Ok ()

type version = { vseq : int; vorigin : int }

let version_newer a b = a.vseq > b.vseq || (a.vseq = b.vseq && a.vorigin > b.vorigin)

type entry = { value : string; bytes : int; version : version }
type role = Owner | Replica of int
type item = { mutable entry : entry; mutable role : role; mutable refreshed : float }
type node_st = { items : (Id.t, item) Hashtbl.t }

type t = {
  cfg : config;
  sub : substrate;
  nodes : (int, node_st) Hashtbl.t;
  mutable n_puts : int;
  mutable n_puts_acked : int;
  mutable n_gets : int;
  mutable n_gets_found : int;
  mutable n_gets_absent : int;
  mutable n_gets_failed : int;
  mutable n_deletes : int;
  mutable n_replicates : int;
  mutable n_handoffs : int;
  mutable n_promotions : int;
  mutable n_pruned : int;
  mutable n_read_repairs : int;
  mutable n_repair_rounds : int;
}

let config t = t.cfg
let substrate t = t.sub

let st_of t a =
  match Hashtbl.find_opt t.nodes a with
  | Some st -> st
  | None ->
      let st = { items = Hashtbl.create 16 } in
      Hashtbl.add t.nodes a st;
      st

let track t a = ignore (st_of t a)
let now t = Engine.now t.sub.engine

(* The first r-1 distinct live successors — the current replica duty of an
   owner at [a]. Protocol successor lists can transiently hold dead or
   duplicate addresses right after a fault; duty is always computed over
   the live view. *)
let replica_targets t a =
  let r = t.cfg.replication - 1 in
  let rec take n seen = function
    | [] -> []
    | s :: tl ->
        if n = 0 then []
        else if s = a || List.mem s seen || not (t.sub.is_member s) then take n seen tl
        else s :: take (n - 1) (s :: seen) tl
  in
  take r [] (t.sub.successors a)

(* Does [a] believe the key falls in its own (predecessor, self] arc? A
   self-pointing predecessor means a one-node ring, which owns the whole
   circle; an unknown/dead predecessor means the view is too stale to
   judge, and callers leave roles untouched for the round. *)
let arc_check t a =
  match t.sub.predecessor a with
  | Some p when t.sub.is_member p ->
      let pid = t.sub.node_id p and my = t.sub.node_id a in
      if Id.equal pid my then Some (fun _ -> true)
      else Some (fun key -> Id.in_oc key ~lo:pid ~hi:my)
  | _ -> None

let believes_owner t a key = match arc_check t a with Some f -> f key | None -> false

(* Adopt a pushed entry at [dst]. Strictly newer versions overwrite; every
   push from the owner renews the lease. A node that currently believes
   itself the owner is never demoted by a push — the stale pusher will
   demote itself at its next scan instead. *)
let accept_replica t dst ~owner ~key ~entry ~as_owner =
  let st = st_of t dst in
  let at = now t in
  match Hashtbl.find_opt st.items key with
  | None ->
      Hashtbl.add st.items key
        { entry; role = (if as_owner then Owner else Replica owner); refreshed = at }
  | Some it ->
      if version_newer entry.version it.entry.version then it.entry <- entry;
      it.refreshed <- at;
      if it.role <> Owner then
        it.role <- (if as_owner || believes_owner t dst key then Owner else Replica owner)

(* One request/reply RPC leg with a client-side timeout, the protocols' own
   [ask] shape: the handler runs at [dst] on delivery and must call
   [reply] exactly once; the response leg is a [Store_reply] send. *)
let rpc t ~kind ?timeout ~src ~dst ~handler ~on_reply ~on_timeout () =
  let eng = t.sub.engine in
  let settled = ref false in
  Engine.send eng ~kind ~src ~dst (fun () ->
      handler ~reply:(fun resp ->
          if Engine.is_alive eng dst then
            Engine.send eng ~kind:Netspan.Store_reply ~src:dst ~dst:src (fun () ->
                if not !settled then begin
                  settled := true;
                  on_reply resp
                end)));
  Engine.timer eng ~node:src
    ~delay:(match timeout with Some d -> d | None -> t.cfg.rpc_timeout)
    (fun () ->
      if not !settled then begin
        settled := true;
        on_timeout ()
      end)

(* ---- put --------------------------------------------------------------- *)

type put_result = { p_owner : int; p_replicas : int; p_version : version }

(* Store at the owner, push to the current replica duty, acknowledge the
   client only once every pushed replica answered or timed out — so an
   acknowledged put reports exactly how many copies exist. *)
let owner_put t o ~key ~value ~bytes ~client ~reply =
  let st = st_of t o in
  let at = now t in
  let vseq = match Hashtbl.find_opt st.items key with Some it -> it.entry.version.vseq + 1 | None -> 1 in
  let version = { vseq; vorigin = client } in
  let entry = { value; bytes; version } in
  (match Hashtbl.find_opt st.items key with
  | Some it ->
      it.entry <- entry;
      it.role <- Owner;
      it.refreshed <- at
  | None -> Hashtbl.add st.items key { entry; role = Owner; refreshed = at });
  let targets = replica_targets t o in
  let pending = ref (List.length targets) and acked = ref 1 in
  let finish () = reply { p_owner = o; p_replicas = !acked; p_version = version } in
  if targets = [] then finish ()
  else
    List.iter
      (fun dst ->
        t.n_replicates <- t.n_replicates + 1;
        rpc t ~kind:Netspan.Store_replicate ~src:o ~dst
          ~handler:(fun ~reply ->
            accept_replica t dst ~owner:o ~key ~entry ~as_owner:false;
            reply ())
          ~on_reply:(fun () ->
            incr acked;
            decr pending;
            if !pending = 0 then finish ())
          ~on_timeout:(fun () ->
            decr pending;
            if !pending = 0 then finish ())
          ())
      targets

let put t ~origin ~key ~value ?bytes k =
  let bytes = match bytes with Some b -> b | None -> String.length value in
  t.n_puts <- t.n_puts + 1;
  let attempts = ref 0 in
  let rec go () =
    if not (t.sub.is_member origin) then k None
    else
      t.sub.lookup ~origin ~key (function
        | Some owner when t.sub.is_member owner && t.sub.is_member origin ->
            rpc t ~kind:Netspan.Store_put ~src:origin ~dst:owner
              ~timeout:(2.0 *. t.cfg.rpc_timeout)
              ~handler:(fun ~reply -> owner_put t owner ~key ~value ~bytes ~client:origin ~reply)
              ~on_reply:(fun r ->
                t.n_puts_acked <- t.n_puts_acked + 1;
                k (Some r))
              ~on_timeout:retry ()
        | _ -> retry ())
  and retry () =
    incr attempts;
    if !attempts > t.cfg.rpc_retries then k None else go ()
  in
  go ()

(* ---- get --------------------------------------------------------------- *)

type get_result = { g_value : string; g_bytes : int; g_version : version; g_owner : int }
type get_outcome = Found of get_result | Absent | Unreachable

(* Probe every current replica for its copy, then call [k] with the newest
   entry seen (from the probes alone). Used both to recover a key the
   owner lacks and, fire-and-forget, to read-repair after serving. *)
let probe_replicas t o ~key ~(on_probe : int -> entry option -> unit) ~(k : entry option -> unit) =
  let targets = replica_targets t o in
  let pending = ref (List.length targets) in
  let best = ref None in
  let settle () = if !pending = 0 then k !best in
  if targets = [] then k None
  else
    List.iter
      (fun dst ->
        rpc t ~kind:Netspan.Store_repair ~src:o ~dst
          ~handler:(fun ~reply ->
            let st = st_of t dst in
            reply (Option.map (fun it -> it.entry) (Hashtbl.find_opt st.items key)))
          ~on_reply:(fun found ->
            on_probe dst found;
            (match found with
            | Some e ->
                if match !best with None -> true | Some b -> version_newer e.version b.version then
                  best := Some e
            | None -> ());
            decr pending;
            settle ())
          ~on_timeout:(fun () ->
            decr pending;
            settle ())
          ())
      targets

let push_entry t ~src ~dst ~key ~entry ~as_owner =
  if Engine.is_alive t.sub.engine src then begin
    t.n_replicates <- t.n_replicates + 1;
    Engine.send t.sub.engine ~kind:Netspan.Store_replicate ~src ~dst (fun () ->
        accept_replica t dst ~owner:(if as_owner then dst else src) ~key ~entry ~as_owner)
  end

(* Serve from the owner's copy, then asynchronously repair the replica
   set: stale or missing copies are re-pushed, and a probe revealing a
   strictly newer version than the owner's is adopted locally. An owner
   without the key probes first and adopts the newest surviving copy, so
   a freshly promoted owner answers with the data, not [Absent]. *)
let owner_get t o ~key ~reply =
  let st = st_of t o in
  match Hashtbl.find_opt st.items key with
  | Some it ->
      reply (Some it.entry);
      probe_replicas t o ~key
        ~on_probe:(fun dst found ->
          match Hashtbl.find_opt st.items key with
          | None -> ()
          | Some it -> (
              match found with
              | None ->
                  t.n_read_repairs <- t.n_read_repairs + 1;
                  push_entry t ~src:o ~dst ~key ~entry:it.entry ~as_owner:false
              | Some e when version_newer it.entry.version e.version ->
                  t.n_read_repairs <- t.n_read_repairs + 1;
                  push_entry t ~src:o ~dst ~key ~entry:it.entry ~as_owner:false
              | Some e when version_newer e.version it.entry.version ->
                  t.n_read_repairs <- t.n_read_repairs + 1;
                  it.entry <- e
              | Some _ -> ()))
        ~k:(fun _ -> ())
  | None ->
      probe_replicas t o ~key
        ~on_probe:(fun _ _ -> ())
        ~k:(fun best ->
          match best with
          | Some e when Engine.is_alive t.sub.engine o ->
              t.n_read_repairs <- t.n_read_repairs + 1;
              accept_replica t o ~owner:o ~key ~entry:e ~as_owner:(believes_owner t o key);
              reply (Some e)
          | _ -> reply None)

let get t ~origin ~key k =
  t.n_gets <- t.n_gets + 1;
  let attempts = ref 0 in
  let rec go () =
    if not (t.sub.is_member origin) then fail ()
    else
      t.sub.lookup ~origin ~key (function
        | Some owner when t.sub.is_member owner && t.sub.is_member origin ->
            rpc t ~kind:Netspan.Store_get ~src:origin ~dst:owner
              ~timeout:(2.0 *. t.cfg.rpc_timeout)
              ~handler:(fun ~reply -> owner_get t owner ~key ~reply)
              ~on_reply:(fun resp ->
                match resp with
                | Some e ->
                    t.n_gets_found <- t.n_gets_found + 1;
                    k (Found { g_value = e.value; g_bytes = e.bytes; g_version = e.version; g_owner = owner })
                | None ->
                    t.n_gets_absent <- t.n_gets_absent + 1;
                    k Absent)
              ~on_timeout:retry ()
        | _ -> retry ())
  and retry () =
    incr attempts;
    if !attempts > t.cfg.rpc_retries then fail () else go ()
  and fail () =
    t.n_gets_failed <- t.n_gets_failed + 1;
    k Unreachable
  in
  go ()

(* ---- delete ------------------------------------------------------------ *)

let owner_delete t o ~key ~reply =
  let st = st_of t o in
  let existed = Hashtbl.mem st.items key in
  Hashtbl.remove st.items key;
  List.iter
    (fun dst ->
      Engine.send t.sub.engine ~kind:Netspan.Store_delete ~src:o ~dst (fun () ->
          Hashtbl.remove (st_of t dst).items key))
    (replica_targets t o);
  reply existed

let delete t ~origin ~key k =
  t.n_deletes <- t.n_deletes + 1;
  let attempts = ref 0 in
  let rec go () =
    if not (t.sub.is_member origin) then k None
    else
      t.sub.lookup ~origin ~key (function
        | Some owner when t.sub.is_member owner && t.sub.is_member origin ->
            rpc t ~kind:Netspan.Store_delete ~src:origin ~dst:owner
              ~handler:(fun ~reply -> owner_delete t owner ~key ~reply)
              ~on_reply:(fun existed -> k (Some existed))
              ~on_timeout:retry ()
        | _ -> retry ())
  and retry () =
    incr attempts;
    if !attempts > t.cfg.rpc_retries then k None else go ()
  in
  go ()

(* ---- the repair scan --------------------------------------------------- *)

let refresh_replicas t a ~key ~entry =
  List.iter (fun dst -> push_entry t ~src:a ~dst ~key ~entry ~as_owner:false) (replica_targets t a)

(* An owned entry whose key left the node's arc (a join landed between the
   predecessor and the key) is routed to its rightful owner; the sender
   demotes itself, staying a lease-covered replica until it ages out of
   the owner's duty window. *)
let handoff t a ~key =
  t.n_handoffs <- t.n_handoffs + 1;
  t.sub.lookup ~origin:a ~key (function
    | Some owner when owner <> a && t.sub.is_member owner && t.sub.is_member a -> (
        match Hashtbl.find_opt t.nodes a with
        | None -> ()
        | Some st -> (
            match Hashtbl.find_opt st.items key with
            | Some it when it.role = Owner ->
                push_entry t ~src:a ~dst:owner ~key ~entry:it.entry ~as_owner:true;
                it.role <- Replica owner;
                it.refreshed <- now t
            | _ -> ()))
    | _ -> ())

(* A replica whose lease ran out has lost its owner: either the owner died
   and the key's arc now belongs to a node that never held a copy (a fresh
   joiner inherits an empty range), or this node merely left the owner's
   duty window. Either way the copy is routed home before being dropped —
   pruning outright would let every survivor of a dead owner age out in
   lockstep and lose the object, since no Owner-role copy exists anywhere
   to re-seed the new arc holder. The push is adopt-if-newer, so in the
   common case (the owner already holds the entry) it is a no-op and this
   degenerates to a plain prune plus one message. *)
let prune_replica t a ~key =
  t.sub.lookup ~origin:a ~key (function
    | Some owner when t.sub.is_member owner && t.sub.is_member a -> (
        match Hashtbl.find_opt t.nodes a with
        | None -> ()
        | Some st -> (
            match Hashtbl.find_opt st.items key with
            | Some it when it.role <> Owner ->
                if owner <> a then begin
                  push_entry t ~src:a ~dst:owner ~key ~entry:it.entry ~as_owner:true;
                  Hashtbl.remove st.items key;
                  t.n_pruned <- t.n_pruned + 1
                end
                (* owner = a: the route and the arc check disagree — keep
                   the copy and let a later round promote it instead *)
            | _ -> ()))
    | _ -> (* unroutable this round: keep the copy, retry next scan *) ())

let repair_round t =
  t.n_repair_rounds <- t.n_repair_rounds + 1;
  let at = now t in
  let lease = float_of_int t.cfg.lease_rounds *. t.cfg.repair_every in
  let addrs = Hashtbl.fold (fun a _ acc -> a :: acc) t.nodes [] |> List.sort compare in
  List.iter
    (fun a ->
      if t.sub.is_member a then begin
        let st = Hashtbl.find t.nodes a in
        let arc = arc_check t a in
        let keys = Hashtbl.fold (fun k _ acc -> k :: acc) st.items [] |> List.sort Id.compare in
        List.iter
          (fun key ->
            match Hashtbl.find_opt st.items key with
            | None -> ()
            | Some it -> (
                match arc with
                | None ->
                    (* stale view: owners keep their replicas warm, nothing
                       is promoted or pruned on guesswork *)
                    if it.role = Owner then refresh_replicas t a ~key ~entry:it.entry
                | Some in_arc ->
                    if in_arc key then begin
                      if it.role <> Owner then begin
                        it.role <- Owner;
                        t.n_promotions <- t.n_promotions + 1
                      end;
                      refresh_replicas t a ~key ~entry:it.entry
                    end
                    else
                      (match it.role with
                      | Owner -> handoff t a ~key
                      | Replica _ ->
                          if at -. it.refreshed > lease then prune_replica t a ~key)))
          keys
      end)
    addrs

let create cfg sub =
  (match validate cfg with Ok () -> () | Error msg -> invalid_arg ("Kv.create: " ^ msg));
  let t =
    {
      cfg;
      sub;
      nodes = Hashtbl.create 64;
      n_puts = 0;
      n_puts_acked = 0;
      n_gets = 0;
      n_gets_found = 0;
      n_gets_absent = 0;
      n_gets_failed = 0;
      n_deletes = 0;
      n_replicates = 0;
      n_handoffs = 0;
      n_promotions = 0;
      n_pruned = 0;
      n_read_repairs = 0;
      n_repair_rounds = 0;
    }
  in
  let rec loop () =
    Engine.schedule sub.engine ~delay:cfg.repair_every (fun () ->
        repair_round t;
        loop ())
  in
  loop ();
  t

(* ---- introspection ----------------------------------------------------- *)

let holders t key =
  Hashtbl.fold
    (fun a st acc -> if t.sub.is_member a && Hashtbl.mem st.items key then a :: acc else acc)
    t.nodes []
  |> List.sort compare

let entry_on t a key =
  match Hashtbl.find_opt t.nodes a with
  | None -> None
  | Some st -> Option.map (fun it -> it.entry) (Hashtbl.find_opt st.items key)

let keys_on t a =
  match Hashtbl.find_opt t.nodes a with
  | None -> []
  | Some st -> Hashtbl.fold (fun k _ acc -> k :: acc) st.items [] |> List.sort Id.compare

let items_live t =
  Hashtbl.fold
    (fun a st acc -> if t.sub.is_member a then acc + Hashtbl.length st.items else acc)
    t.nodes 0

let forget t a key =
  match Hashtbl.find_opt t.nodes a with None -> () | Some st -> Hashtbl.remove st.items key

let tamper t a key entry =
  match Hashtbl.find_opt t.nodes a with
  | None -> ()
  | Some st -> (
      match Hashtbl.find_opt st.items key with
      | Some it -> it.entry <- entry
      | None -> Hashtbl.add st.items key { entry; role = Replica a; refreshed = now t })

let puts t = t.n_puts
let puts_acked t = t.n_puts_acked
let gets t = t.n_gets
let gets_found t = t.n_gets_found
let gets_absent t = t.n_gets_absent
let gets_failed t = t.n_gets_failed
let deletes t = t.n_deletes
let replicate_msgs t = t.n_replicates
let handoffs t = t.n_handoffs
let promotions t = t.n_promotions
let pruned t = t.n_pruned
let read_repairs t = t.n_read_repairs
let repair_rounds t = t.n_repair_rounds

let export_metrics ?(prefix = "store") t m =
  let c name v = Obs.Metrics.set_counter (Obs.Metrics.counter m (prefix ^ "." ^ name)) v in
  c "puts" t.n_puts;
  c "puts_acked" t.n_puts_acked;
  c "gets" t.n_gets;
  c "gets_found" t.n_gets_found;
  c "gets_absent" t.n_gets_absent;
  c "gets_failed" t.n_gets_failed;
  c "deletes" t.n_deletes;
  c "replicate_msgs" t.n_replicates;
  c "handoffs" t.n_handoffs;
  c "promotions" t.n_promotions;
  c "pruned" t.n_pruned;
  c "read_repairs" t.n_read_repairs;
  c "repair_rounds" t.n_repair_rounds;
  Obs.Metrics.set (Obs.Metrics.gauge m (prefix ^ ".items_live")) (float_of_int (items_live t))
