type t = {
  k : int;
  mutable have_fp : bool;
  mutable last_fp : int;
  mutable streak : int;
  mutable stable : bool;
  mutable epoch_start : float;
  mutable converged_at : float option;
  mutable observations : int;
  mutable changes : int;
  mutable convergences : int;
  mutable disturbances : int;
  mutable last_convergence_ms : float;
  mutable total_convergence_ms : float;
}

let create ?(k = 3) () =
  if k < 1 then invalid_arg "Stability.create: k must be >= 1";
  {
    k;
    have_fp = false;
    last_fp = 0;
    streak = 0;
    stable = false;
    epoch_start = 0.0;
    converged_at = None;
    observations = 0;
    changes = 0;
    convergences = 0;
    disturbances = 0;
    last_convergence_ms = 0.0;
    total_convergence_ms = 0.0;
  }

let k t = t.k
let is_stable t = t.stable
let streak t = t.streak
let observations t = t.observations
let changes t = t.changes
let convergences t = t.convergences
let disturbances t = t.disturbances
let converged_at t = t.converged_at
let last_convergence_ms t = t.last_convergence_ms
let total_convergence_ms t = t.total_convergence_ms

(* leaving the stable phase: the convergence clock restarts here *)
let unsettle t ~at =
  if t.stable then begin
    t.stable <- false;
    t.converged_at <- None;
    t.disturbances <- t.disturbances + 1;
    t.epoch_start <- at
  end

let perturb t ~at =
  unsettle t ~at;
  t.streak <- 0

let observe t ~at ~fingerprint =
  t.observations <- t.observations + 1;
  if not t.have_fp then begin
    t.have_fp <- true;
    t.last_fp <- fingerprint;
    t.streak <- 0
  end
  else if fingerprint = t.last_fp then begin
    t.streak <- t.streak + 1;
    if (not t.stable) && t.streak >= t.k then begin
      t.stable <- true;
      t.converged_at <- Some at;
      t.convergences <- t.convergences + 1;
      t.last_convergence_ms <- at -. t.epoch_start;
      t.total_convergence_ms <- t.total_convergence_ms +. t.last_convergence_ms
    end
  end
  else begin
    t.changes <- t.changes + 1;
    t.last_fp <- fingerprint;
    unsettle t ~at;
    t.streak <- 0
  end

(* FNV-1a over native ints, folded 8 bits at a time so negative and large
   values mix fully; [land max_int] keeps the accumulator positive (and so
   equal across 63-bit runtimes regardless of how callers render it) *)
let fp_init = 0xcbf29ce84222325 (* FNV offset basis, truncated to fit a 63-bit int *)

let fp_add acc v =
  let acc = ref acc and v = ref v in
  for _ = 0 to 7 do
    acc := (!acc lxor (!v land 0xff)) * 0x100_0000_01b3 land max_int;
    v := !v asr 8
  done;
  !acc

let export_metrics ?(prefix = "stability") t m =
  let c name v = Obs.Metrics.set_counter (Obs.Metrics.counter m (prefix ^ "." ^ name)) v in
  let g name v = Obs.Metrics.set (Obs.Metrics.gauge m (prefix ^ "." ^ name)) v in
  c "observations" t.observations;
  c "changes" t.changes;
  c "convergences" t.convergences;
  c "disturbances" t.disturbances;
  g "stable" (if t.stable then 1.0 else 0.0);
  g "streak" (float_of_int t.streak);
  g "last_convergence_ms" t.last_convergence_ms;
  g "total_convergence_ms" t.total_convergence_ms
