(** Convergence detection for the message-level maintenance protocols.

    A detector watches a {e fingerprint} of some routing state (successor
    lists, predecessors, finger tables — hashed by the caller with
    {!fp_init}/{!fp_add}) through periodic {!observe} calls and declares the
    state {e stable} once [k] consecutive observations see the same
    fingerprint. It is a two-phase state machine:

    {v
      Converging --[k unchanged observations]--> Stable
      Stable --[fingerprint change | perturb]--> Converging
    v}

    Entering [Stable] records a {e convergence}: the time since the phase
    began (creation, the last observed change, or the last {!perturb})
    is the convergence time — the metric the maintenance-vs-performance
    tradeoff is scored on. Leaving [Stable] records a {e disturbance}.

    The protocols ({!Chord.Protocol}, [Hieras.Hprotocol]) feed one detector
    per ring (per layer for HIERAS) from a fixed-cadence probe and use
    {!is_stable} to drive adaptive maintenance intervals: back off while
    stable, snap back the instant a change is observed. Everything here is
    driven by simulated time, so a detector is a pure function of the run. *)

type t

val create : ?k:int -> unit -> t
(** [k] (default 3, must be >= 1) is the number of consecutive unchanged
    observations required to declare stability. The convergence clock
    starts at time 0. *)

val observe : t -> at:float -> fingerprint:int -> unit
(** Feed one probe result. An unchanged fingerprint extends the streak (and
    may complete a convergence); a changed one resets it (and ends a stable
    phase). The first observation only seeds the fingerprint. *)

val perturb : t -> at:float -> unit
(** Note an external lifecycle event (join initiated, node killed) whose
    effect on the fingerprint may not be visible yet: resets the streak and,
    if stable, starts a new converging phase at [at]. Idempotent while
    already converging (the phase keeps its original start). *)

val k : t -> int
val is_stable : t -> bool
val streak : t -> int
(** Consecutive unchanged observations so far. *)

val observations : t -> int
val changes : t -> int
(** Observations whose fingerprint differed from the previous one. *)

val convergences : t -> int
(** Completed Converging-to-Stable transitions. *)

val disturbances : t -> int
(** Stable-to-Converging transitions (fingerprint changes and perturbs
    while stable). *)

val converged_at : t -> float option
(** Time stability was declared, [None] while converging. *)

val last_convergence_ms : t -> float
(** Duration of the most recently completed converging phase (0 before the
    first convergence). *)

val total_convergence_ms : t -> float
(** Sum over all completed converging phases — total time the ring spent
    out of its fixpoint, as seen at probe granularity. *)

(** {2 Fingerprinting}

    A tiny FNV-1a-style mixer so callers hash routing state without any
    dependency: fold every relevant integer (addresses, -1 for absent
    entries) with {!fp_add} starting from {!fp_init}, visiting state in a
    deterministic (sorted) order. *)

val fp_init : int
val fp_add : int -> int -> int

val export_metrics : ?prefix:string -> t -> Obs.Metrics.t -> unit
(** Counters [<prefix>.observations], [.changes], [.convergences],
    [.disturbances]; gauges [.stable] (0/1), [.streak],
    [.last_convergence_ms], [.total_convergence_ms] (default prefix
    ["stability"]). Idempotent. *)
