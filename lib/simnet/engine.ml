type t = {
  latency : int -> int -> float;
  alive : bool array;
  heap : Event_heap.t;
  mutable clock : float;
  mutable loss_rate : float;
  mutable loss_rng : Prng.Rng.t option;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped_dead : int;
  mutable dropped_loss : int;
  mutable deaths : int;
  mutable revivals : int;
  mutable live : int;
  mutable timers_set : int;
  mutable timers_fired : int;
  mutable ns : Obs.Netspan.t;
  (* span of the message currently being delivered (and the root of its
     causal tree); -1 outside a delivery, so sends from timers or driver
     code start fresh trees *)
  mutable cur_span : int;
  mutable cur_root : int;
  mutable ts_sent : Obs.Timeseries.series;
  mutable ts_delivered : Obs.Timeseries.series;
  mutable ts_dropped : Obs.Timeseries.series;
  mutable ts_live : Obs.Timeseries.series;
}

let ts_off =
  (* registering on the disabled collector yields the no-op handle *)
  Obs.Timeseries.counter Obs.Timeseries.disabled ""

let create ~latency ~nodes =
  if nodes < 0 then invalid_arg "Engine.create: negative node count";
  {
    latency;
    alive = Array.make nodes true;
    heap = Event_heap.create ();
    clock = 0.0;
    loss_rate = 0.0;
    loss_rng = None;
    sent = 0;
    delivered = 0;
    dropped_dead = 0;
    dropped_loss = 0;
    deaths = 0;
    revivals = 0;
    live = nodes;
    timers_set = 0;
    timers_fired = 0;
    ns = Obs.Netspan.disabled;
    cur_span = -1;
    cur_root = -1;
    ts_sent = ts_off;
    ts_delivered = ts_off;
    ts_dropped = ts_off;
    ts_live = ts_off;
  }

let attach_timeseries ?(prefix = "net") t ts =
  t.ts_sent <- Obs.Timeseries.counter ts (prefix ^ ".sent");
  t.ts_delivered <- Obs.Timeseries.counter ts (prefix ^ ".delivered");
  t.ts_dropped <- Obs.Timeseries.counter ts (prefix ^ ".dropped");
  t.ts_live <- Obs.Timeseries.gauge ts (prefix ^ ".live")

let attach_netspan t ns = t.ns <- ns
let netspan t = t.ns

let now t = t.clock
let node_count t = Array.length t.alive
let is_alive t n = t.alive.(n)

(* kill/revive count transitions only: a fault schedule may (and does, when a
   crash-restart window overlaps a correlated outage) kill an already-dead
   node or revive a live one, and those no-ops must not skew the
   deaths/revivals/live accounting. *)
let kill t n =
  if t.alive.(n) then begin
    t.alive.(n) <- false;
    t.deaths <- t.deaths + 1;
    t.live <- t.live - 1;
    Obs.Timeseries.set t.ts_live ~at:t.clock (float_of_int t.live)
  end

let revive t n =
  if not t.alive.(n) then begin
    t.alive.(n) <- true;
    t.revivals <- t.revivals + 1;
    t.live <- t.live + 1;
    Obs.Timeseries.set t.ts_live ~at:t.clock (float_of_int t.live)
  end

let set_loss t ~rate ~rng =
  if rate < 0.0 || rate >= 1.0 then invalid_arg "Engine.set_loss: rate must be in [0, 1)";
  t.loss_rate <- rate;
  t.loss_rng <- (if rate = 0.0 then None else Some rng)

let lost t =
  match t.loss_rng with
  | None -> false
  | Some rng -> t.loss_rate > 0.0 && Prng.Rng.float rng 1.0 < t.loss_rate

(* Traced variant of [send]: allocate a span, record the message (parent =
   the span being delivered right now, if any), and wrap the delivery so
   sends made while handling it are recorded as its children. The loss
   draw happens at the same point as on the untraced path, so attaching a
   netspan never shifts the RNG stream. *)
let send_traced t ~kind ~src ~dst f =
  let ns = t.ns in
  let span = Obs.Netspan.next_span ns in
  let parent = t.cur_span in
  let root = if parent < 0 then span else t.cur_root in
  let lat = t.latency src dst in
  Obs.Netspan.msg ns ~span ~parent ~root ~kind ~src ~dst ~at:t.clock ~lat;
  if lost t then begin
    t.dropped_loss <- t.dropped_loss + 1;
    Obs.Timeseries.add t.ts_dropped ~at:t.clock 1.0;
    Obs.Netspan.drop ns ~span ~root ~at:t.clock ~why:`Loss
  end
  else
    Event_heap.push t.heap ~time:(t.clock +. lat) (fun () ->
        if t.alive.(dst) then begin
          t.delivered <- t.delivered + 1;
          Obs.Timeseries.add t.ts_delivered ~at:t.clock 1.0;
          let ps = t.cur_span and pr = t.cur_root in
          t.cur_span <- span;
          t.cur_root <- root;
          f ();
          t.cur_span <- ps;
          t.cur_root <- pr
        end
        else begin
          t.dropped_dead <- t.dropped_dead + 1;
          Obs.Timeseries.add t.ts_dropped ~at:t.clock 1.0;
          Obs.Netspan.drop ns ~span ~root ~at:t.clock ~why:`Dead
        end)

let send ?(kind = Obs.Netspan.Other) t ~src ~dst f =
  if not t.alive.(src) then invalid_arg "Engine.send: source node is dead";
  t.sent <- t.sent + 1;
  Obs.Timeseries.add t.ts_sent ~at:t.clock 1.0;
  if Obs.Netspan.enabled t.ns then send_traced t ~kind ~src ~dst f
  else if lost t then begin
    t.dropped_loss <- t.dropped_loss + 1;
    Obs.Timeseries.add t.ts_dropped ~at:t.clock 1.0
  end
  else begin
    let arrival = t.clock +. t.latency src dst in
    Event_heap.push t.heap ~time:arrival (fun () ->
        if t.alive.(dst) then begin
          t.delivered <- t.delivered + 1;
          Obs.Timeseries.add t.ts_delivered ~at:t.clock 1.0;
          f ()
        end
        else begin
          t.dropped_dead <- t.dropped_dead + 1;
          Obs.Timeseries.add t.ts_dropped ~at:t.clock 1.0
        end)
  end

let timer t ~node ~delay f =
  if delay < 0.0 then invalid_arg "Engine.timer: negative delay";
  t.timers_set <- t.timers_set + 1;
  Event_heap.push t.heap ~time:(t.clock +. delay) (fun () ->
      if t.alive.(node) then begin
        t.timers_fired <- t.timers_fired + 1;
        f ()
      end
      else begin
        t.dropped_dead <- t.dropped_dead + 1;
        Obs.Timeseries.add t.ts_dropped ~at:t.clock 1.0
      end)

let schedule t ~delay f =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  Event_heap.push t.heap ~time:(t.clock +. delay) f

let run ?(max_events = max_int) ?until t =
  let processed = ref 0 in
  let continue = ref true in
  while !continue && !processed < max_events do
    match Event_heap.pop t.heap with
    | None -> continue := false
    | Some (time, f) ->
        (match until with
        | Some limit when time >= limit ->
            (* put it back: it belongs to a later run *)
            Event_heap.push t.heap ~time f;
            t.clock <- limit;
            continue := false
        | _ ->
            t.clock <- Float.max t.clock time;
            incr processed;
            f ())
  done

let run_until_quiet ?(max_events = 10_000_000) t =
  run ~max_events t;
  if not (Event_heap.is_empty t.heap) then
    failwith "Engine.run_until_quiet: event budget exhausted (livelock?)"

let sent t = t.sent
let delivered t = t.delivered
let dropped_dead t = t.dropped_dead
let dropped_loss t = t.dropped_loss
let deaths t = t.deaths
let revivals t = t.revivals
let live_count t = t.live
let timers_set t = t.timers_set
let timers_fired t = t.timers_fired

let export_metrics ?(prefix = "simnet") t m =
  let c name v = Obs.Metrics.set_counter (Obs.Metrics.counter m (prefix ^ "." ^ name)) v in
  c "sent" t.sent;
  c "delivered" t.delivered;
  c "dropped_dead" t.dropped_dead;
  c "dropped_loss" t.dropped_loss;
  c "timers_set" t.timers_set;
  c "timers_fired" t.timers_fired;
  c "deaths" t.deaths;
  c "revivals" t.revivals;
  c "pending_events" (Event_heap.size t.heap);
  Obs.Metrics.set (Obs.Metrics.gauge m (prefix ^ ".live")) (float_of_int t.live);
  Obs.Metrics.set (Obs.Metrics.gauge m (prefix ^ ".clock_ms")) t.clock
