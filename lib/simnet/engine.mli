(** Discrete-event network simulation engine.

    Nodes are integer addresses; a message is a closure executed at its
    arrival time (send time + link latency from the latency function).
    The engine models node failures (messages to or timers on a dead node are
    silently discarded — a {e silent fail}, exactly the failure mode the
    Chord and HIERAS maintenance protocols must survive) and optional random
    message loss.

    The protocol layers ({!Chord.Protocol}, [Hieras.Hprotocol]) are built on
    this engine; the large-scale routing experiments bypass it and use the
    oracle-built networks instead (see DESIGN.md §5). *)

type t

val create : latency:(int -> int -> float) -> nodes:int -> t
(** [create ~latency ~nodes]: addresses are [0 .. nodes-1]; [latency a b] is
    the one-way message delay in ms ([a = b] allowed and usually 0). All
    nodes start alive. *)

val now : t -> float
(** Current simulated time (ms). *)

val node_count : t -> int
val is_alive : t -> int -> bool
val kill : t -> int -> unit
(** Silent fail: pending deliveries and timers for the node are discarded on
    arrival. Killing an already-dead node is a no-op — it does not bump
    {!deaths} or move the {!live_count} gauge, so overlapping fault
    schedules cannot skew the accounting. *)

val revive : t -> int -> unit
(** Reviving a live node is likewise a transition-only no-op. *)

val set_loss : t -> rate:float -> rng:Prng.Rng.t -> unit
(** Drop each message independently with probability [rate] (0 disables). *)

val send : t -> src:int -> dst:int -> (unit -> unit) -> unit
(** Deliver the closure at [now + latency src dst], unless the destination is
    dead at delivery time or the message is lost. The source must be alive
    when sending (a dead source raises [Invalid_argument] — protocols must
    not act from beyond the grave). *)

val timer : t -> node:int -> delay:float -> (unit -> unit) -> unit
(** Local timer: fires after [delay] ms unless the node is dead by then. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** God-event: fires unconditionally — used by test harnesses to inject
    failures, joins, and assertions at chosen times. *)

val run : ?max_events:int -> ?until:float -> t -> unit
(** Process events in timestamp order until the queue is empty, [until]
    (exclusive) is reached, or [max_events] have run. Remaining events stay
    queued; [run] can be called again. *)

val run_until_quiet : ?max_events:int -> t -> unit
(** Run until the queue drains completely (bounded by [max_events],
    default 10 million; raises [Failure] if exceeded — a livelock guard). *)

(** Delivery statistics (cumulative). *)

val sent : t -> int
val delivered : t -> int
val dropped_dead : t -> int
(** Messages/timers discarded because the destination was dead. *)

val dropped_loss : t -> int
(** Messages discarded by random loss injection. *)

val deaths : t -> int
(** Live-to-dead transitions effected by {!kill} (no-op kills excluded). *)

val revivals : t -> int
(** Dead-to-live transitions effected by {!revive} (no-op revives
    excluded). [deaths - revivals = nodes - live_count] always holds. *)

val live_count : t -> int
(** Nodes currently alive. *)

val attach_timeseries : ?prefix:string -> t -> Obs.Timeseries.t -> unit
(** Stream per-bucket traffic into a time-series collector from now on:
    counter series [<prefix>.sent], [.delivered] and [.dropped] (dead-node
    and loss drops combined) plus gauge series [<prefix>.live] (population
    after each kill/revive transition), stamped with the simulated clock
    (default prefix ["net"]). Attaching the disabled collector detaches.
    Events already processed are not back-filled. *)

val export_metrics : ?prefix:string -> t -> Obs.Metrics.t -> unit
(** Mirror the engine's cumulative state into a metrics registry: counters
    [<prefix>.sent], [.delivered], [.dropped_dead], [.dropped_loss],
    [.deaths], [.revivals] and [.pending_events], gauges [<prefix>.live]
    and [<prefix>.clock_ms] (default prefix ["simnet"]). The conservation law [sent = delivered + dropped_dead +
    dropped_loss] holds whenever the event queue has drained and no timers
    were used ([timer] drops on dead nodes also count into [dropped_dead],
    [schedule] god-events are never counted). Idempotent: re-exporting
    overwrites the same series. *)
