(** Discrete-event network simulation engine.

    Nodes are integer addresses; a message is a closure executed at its
    arrival time (send time + link latency from the latency function).
    The engine models node failures (messages to or timers on a dead node are
    silently discarded — a {e silent fail}, exactly the failure mode the
    Chord and HIERAS maintenance protocols must survive) and optional random
    message loss.

    The protocol layers ({!Chord.Protocol}, [Hieras.Hprotocol]) are built on
    this engine; the large-scale routing experiments bypass it and use the
    oracle-built networks instead (see DESIGN.md §5). *)

type t

val create : latency:(int -> int -> float) -> nodes:int -> t
(** [create ~latency ~nodes]: addresses are [0 .. nodes-1]; [latency a b] is
    the one-way message delay in ms ([a = b] allowed and usually 0). All
    nodes start alive. *)

val now : t -> float
(** Current simulated time (ms). *)

val node_count : t -> int
val is_alive : t -> int -> bool
val kill : t -> int -> unit
(** Silent fail: pending deliveries and timers for the node are discarded on
    arrival. Killing an already-dead node is a no-op — it does not bump
    {!deaths} or move the {!live_count} gauge, so overlapping fault
    schedules cannot skew the accounting. *)

val revive : t -> int -> unit
(** Reviving a live node is likewise a transition-only no-op. *)

val set_loss : t -> rate:float -> rng:Prng.Rng.t -> unit
(** Drop each message independently with probability [rate] (0 disables). *)

val send : ?kind:Obs.Netspan.kind -> t -> src:int -> dst:int -> (unit -> unit) -> unit
(** Deliver the closure at [now + latency src dst], unless the destination is
    dead at delivery time or the message is lost. The source must be alive
    when sending (a dead source raises [Invalid_argument] — protocols must
    not act from beyond the grave).

    [kind] (default [Other]) labels the message for the attached
    {!Obs.Netspan} tracer; it is ignored — without even an allocation —
    when no tracer is attached. When one is, the send records a span whose
    parent is the message being delivered right now (sends from timers,
    god-events and driver code start fresh causal trees), and the loss
    draw happens at the same point in the RNG stream as on the untraced
    path, so tracing never changes simulation behavior. *)

val timer : t -> node:int -> delay:float -> (unit -> unit) -> unit
(** Local timer: fires after [delay] ms unless the node is dead by then
    (then it counts into {!dropped_dead}). Sets and fires are counted
    ({!timers_set} / {!timers_fired}) so the conservation law stays
    checkable in runs that use timers. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** God-event: fires unconditionally — used by test harnesses to inject
    failures, joins, and assertions at chosen times. *)

val run : ?max_events:int -> ?until:float -> t -> unit
(** Process events in timestamp order until the queue is empty, [until]
    (exclusive) is reached, or [max_events] have run. Remaining events stay
    queued; [run] can be called again. *)

val run_until_quiet : ?max_events:int -> t -> unit
(** Run until the queue drains completely (bounded by [max_events],
    default 10 million; raises [Failure] if exceeded — a livelock guard). *)

(** Delivery statistics (cumulative). *)

val sent : t -> int
val delivered : t -> int
val dropped_dead : t -> int
(** Messages/timers discarded because the destination was dead. *)

val dropped_loss : t -> int
(** Messages discarded by random loss injection. *)

val deaths : t -> int
(** Live-to-dead transitions effected by {!kill} (no-op kills excluded). *)

val revivals : t -> int
(** Dead-to-live transitions effected by {!revive} (no-op revives
    excluded). [deaths - revivals = nodes - live_count] always holds. *)

val live_count : t -> int
(** Nodes currently alive. *)

val timers_set : t -> int
(** Timers armed by {!timer} ({!schedule} god-events are not counted). *)

val timers_fired : t -> int
(** Timers that fired on a live node. A timer set but not yet due stays in
    the queue ([pending_events]); one due on a dead node counts into
    {!dropped_dead} instead. *)

val attach_timeseries : ?prefix:string -> t -> Obs.Timeseries.t -> unit
(** Stream per-bucket traffic into a time-series collector from now on:
    counter series [<prefix>.sent], [.delivered] and [.dropped] (dead-node
    and loss drops combined) plus gauge series [<prefix>.live] (population
    after each kill/revive transition), stamped with the simulated clock
    (default prefix ["net"]). Attaching the disabled collector detaches.
    Events already processed are not back-filled. *)

val attach_netspan : t -> Obs.Netspan.t -> unit
(** Record every subsequent send as a message-level span (see
    {!Obs.Netspan}): kind, src/dst, send time, link latency and causal
    parent, plus a drop record when the message is lost or its destination
    dead at arrival. Attaching {!Obs.Netspan.disabled} (the initial state)
    detaches; the disabled path is the pre-tracing code, branch-for-branch.
    Messages already sent are not back-filled. *)

val netspan : t -> Obs.Netspan.t
(** The currently attached tracer (for end-of-run accounting audits). *)

val export_metrics : ?prefix:string -> t -> Obs.Metrics.t -> unit
(** Mirror the engine's cumulative state into a metrics registry: counters
    [<prefix>.sent], [.delivered], [.dropped_dead], [.dropped_loss],
    [.timers_set], [.timers_fired], [.deaths], [.revivals] and
    [.pending_events], gauges [<prefix>.live] and [<prefix>.clock_ms]
    (default prefix ["simnet"]). The conservation law
    [sent + timers_set = delivered + timers_fired + dropped_dead +
    dropped_loss] holds whenever the event queue has drained ([timer]
    drops on dead nodes count into [dropped_dead]; [schedule] god-events
    are never counted on either side). Idempotent: re-exporting
    overwrites the same series. *)
