type space = { bits : int; nbytes : int; top_mask : int }
type t = string (* big-endian, length nbytes, top byte masked to top_mask *)

let space ~bits =
  if bits < 1 || bits > 160 then invalid_arg "Id.space: bits must be in [1, 160]";
  let nbytes = (bits + 7) / 8 in
  let rem = bits mod 8 in
  let top_mask = if rem = 0 then 0xFF else (1 lsl rem) - 1 in
  { bits; nbytes; top_mask }

let bits sp = sp.bits
let bytes sp = sp.nbytes
let sha1_space = space ~bits:160

let zero sp = String.make sp.nbytes '\000'

let of_bytes_masked sp b =
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) land sp.top_mask));
  Bytes.unsafe_to_string b

let of_int sp n =
  if n < 0 then invalid_arg "Id.of_int: negative";
  let b = Bytes.make sp.nbytes '\000' in
  let rec fill i v =
    if i >= 0 && v > 0 then begin
      Bytes.set b i (Char.chr (v land 0xFF));
      fill (i - 1) (v lsr 8)
    end
  in
  fill (sp.nbytes - 1) n;
  of_bytes_masked sp b

let to_int sp (x : t) =
  if sp.bits > 62 then failwith "Id.to_int: space too wide";
  let v = ref 0 in
  String.iter (fun c -> v := (!v lsl 8) lor Char.code c) x;
  !v

let of_hash sp s =
  let d = Sha1.digest s in
  let b = Bytes.of_string (String.sub d 0 sp.nbytes) in
  of_bytes_masked sp b

let random sp rng =
  let b = Bytes.init sp.nbytes (fun _ -> Char.chr (Prng.Rng.byte rng)) in
  of_bytes_masked sp b

let compare (a : t) (b : t) = String.compare a b
let equal (a : t) (b : t) = String.equal a b

let prefix_int (x : t) =
  let k = min 7 (String.length x) in
  let v = ref 0 in
  for i = 0 to k - 1 do
    v := (!v lsl 8) lor Char.code (String.unsafe_get x i)
  done;
  !v

let add_pow2 sp (x : t) i =
  if i < 0 || i >= sp.bits then invalid_arg "Id.add_pow2: exponent out of range";
  let b = Bytes.of_string x in
  let byte_pos = sp.nbytes - 1 - (i / 8) in
  let bit = 1 lsl (i mod 8) in
  let rec carry_add pos add =
    if pos < 0 || add = 0 then ()
    else begin
      let v = Char.code (Bytes.get b pos) + add in
      Bytes.set b pos (Char.chr (v land 0xFF));
      carry_add (pos - 1) (v lsr 8)
    end
  in
  carry_add byte_pos bit;
  of_bytes_masked sp b

let succ sp x = add_pow2 sp x 0

let pred sp (x : t) =
  let b = Bytes.of_string x in
  (* subtract 1 with borrow; wrap-around handled by the final mask *)
  let rec borrow pos =
    if pos < 0 then ()
    else
      let v = Char.code (Bytes.get b pos) in
      if v > 0 then Bytes.set b pos (Char.chr (v - 1))
      else begin
        Bytes.set b pos '\xFF';
        borrow (pos - 1)
      end
  in
  borrow (Bytes.length b - 1);
  (* wrapping below zero fills with 0xFF; the final mask reduces mod 2^bits *)
  of_bytes_masked sp b

(* Circle interval membership. On the circle, when lo = hi the open interval
   (lo, hi) is everything except lo, and (lo, hi] is the full circle: these
   are Chord's conventions and are required for single-node rings. *)
let in_oo x ~lo ~hi =
  let c_lo = compare lo hi in
  if c_lo < 0 then compare lo x < 0 && compare x hi < 0
  else if c_lo > 0 then compare lo x < 0 || compare x hi < 0
  else not (equal x lo)

let in_oc x ~lo ~hi =
  let c_lo = compare lo hi in
  if c_lo < 0 then compare lo x < 0 && compare x hi <= 0
  else if c_lo > 0 then compare lo x < 0 || compare x hi <= 0
  else true

let in_co x ~lo ~hi =
  let c_lo = compare lo hi in
  if c_lo < 0 then compare lo x <= 0 && compare x hi < 0
  else if c_lo > 0 then compare lo x <= 0 || compare x hi < 0
  else true

let to_float_fraction sp (x : t) =
  (* big-endian expansion into [0,1): only the leading ~7 bytes matter *)
  let acc = ref 0.0 and scale = ref 1.0 in
  let top_bits = if sp.bits mod 8 = 0 then 8 else sp.bits mod 8 in
  String.iteri
    (fun i c ->
      let w = if i = 0 then float_of_int (1 lsl top_bits) else 256.0 in
      scale := !scale /. w;
      acc := !acc +. (float_of_int (Char.code c) *. !scale))
    x;
  !acc

let distance_cw sp a b =
  let fa = to_float_fraction sp a and fb = to_float_fraction sp b in
  let d = fb -. fa in
  if d < 0.0 then d +. 1.0 else d

let to_hex (x : t) =
  let buf = Buffer.create (2 * String.length x) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) x;
  Buffer.contents buf

let pp fmt (x : t) =
  if String.length x <= 2 then begin
    let v = ref 0 in
    String.iter (fun c -> v := (!v lsl 8) lor Char.code c) x;
    Format.fprintf fmt "%d" !v
  end
  else Format.pp_print_string fmt (to_hex x)

let digit_count4 sp =
  if sp.bits mod 4 <> 0 then invalid_arg "Id.digit_count4: bits must be a multiple of 4";
  sp.bits / 4

let digit4 sp (x : t) i =
  let n = digit_count4 sp in
  if i < 0 || i >= n then invalid_arg "Id.digit4: index out of range";
  (* in odd-nibble-count spaces the first nibble is the low half of byte 0 *)
  let nibble_offset = (2 * sp.nbytes) - n in
  let pos = i + nibble_offset in
  let byte = Char.code (String.unsafe_get x (pos / 2)) in
  if pos mod 2 = 0 then byte lsr 4 else byte land 0xF
