(** Ring identifiers: fixed-width unsigned integers on the Chord circle.

    A {!space} fixes the identifier width [m] (bits); identifiers live in
    [\[0, 2^m)] and all arithmetic wraps modulo [2^m]. The paper uses the full
    160-bit SHA-1 space for real networks and an 8-bit space for its worked
    examples (Table 2); both are supported by the same representation
    (big-endian byte strings with the top byte masked).

    Interval membership follows Chord's conventions on the circle:
    an interval [(a, a)] (resp. [(a, a\]]) denotes the whole circle — that is
    what makes [find_successor] terminate when only one node exists. *)

type space
(** An identifier space of a given bit width. *)

type t
(** An identifier. Only comparable within the same space. *)

val space : bits:int -> space
(** [space ~bits] with [1 <= bits <= 160]. *)

val bits : space -> int
val bytes : space -> int
(** Number of bytes in the representation: [ceil (bits / 8)]. *)

val sha1_space : space
(** The standard 160-bit space. *)

val zero : space -> t
val of_int : space -> int -> t
(** [of_int sp n] for [0 <= n]; reduced modulo [2^bits]. *)

val to_int : space -> t -> int
(** Exact value; raises [Failure] if the space has more than 62 bits. *)

val of_hash : space -> string -> t
(** SHA-1 of the argument truncated (big-endian prefix, top bits masked) to
    the space width — the paper's "collision-free" id assignment. *)

val random : space -> Prng.Rng.t -> t
(** Uniform identifier. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val prefix_int : t -> int
(** The identifier's leading [min 56 bits] as a non-negative int — a
    comparison accelerator: within one space,
    [prefix_int a < prefix_int b] implies [compare a b < 0], and equal
    prefixes require a full {!compare} to decide. Packed networks keep a
    flat [prefix_int] array next to the id array so the routing hot path
    resolves almost every comparison with one integer load (two random
    160-bit ids collide on 56 leading bits with probability [2^-56]). *)

val add_pow2 : space -> t -> int -> t
(** [add_pow2 sp x i] is [x + 2^i mod 2^bits]; requires [0 <= i < bits].
    This generates Chord finger starts. *)

val succ : space -> t -> t
(** [x + 1 mod 2^bits]. *)

val pred : space -> t -> t
(** [x - 1 mod 2^bits]. *)

val in_oo : t -> lo:t -> hi:t -> bool
(** Circle membership in the open interval [(lo, hi)]. [(a, a)] is the whole
    circle minus [a]. *)

val in_oc : t -> lo:t -> hi:t -> bool
(** Circle membership in [(lo, hi\]]. [(a, a\]] is the whole circle. *)

val in_co : t -> lo:t -> hi:t -> bool
(** Circle membership in [\[lo, hi)]. [\[a, a)] is the whole circle. *)

val distance_cw : space -> t -> t -> float
(** Clockwise distance from the first to the second id, as a float fraction
    of the circle in [\[0, 1)]. Approximate for wide spaces (53-bit mantissa);
    used only for diagnostics and tests. *)

val to_hex : t -> string
val pp : Format.formatter -> t -> unit
(** Hex for wide spaces, decimal for spaces of at most 16 bits (matching the
    paper's small worked examples). *)

val digit4 : space -> t -> int -> int
(** [digit4 sp x i] is the [i]-th 4-bit digit of [x], big-endian (digit 0 is
    the most significant nibble) — the digit decomposition Pastry-style
    prefix routing uses. Requires a space whose width is a multiple of 4. *)

val digit_count4 : space -> int
(** Number of 4-bit digits in the space ([bits / 4]). *)
