(** Fixed-bin histograms with PDF / CDF extraction.

    The paper reports a PDF of hop counts (Figure 4) and a CDF of routing
    latency (Figure 5); this module produces both from streamed samples. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** Bins partition [\[lo, hi)] evenly; samples outside are clamped into the
    first/last bin (and counted in {!clamped}). *)

val create_ints : max:int -> t
(** Unit-width bins for integer-valued samples [0..max] — hop-count PDFs. *)

val add : t -> float -> unit

val merge : t -> t -> t
(** A fresh histogram whose bin counts are the exact sums of both inputs —
    the parallel-reduction step for chunked accumulation. Raises
    [Invalid_argument] unless both share the same [lo]/[hi]/bin count. *)

val count : t -> int
val clamped : t -> int
(** How many samples fell outside [\[lo, hi)] and were clamped. *)

val bin_count : t -> int
val bin_lo : t -> int -> float
(** Lower edge of a bin. *)

val counts : t -> int array
(** A copy of the raw per-bin sample counts. *)

val pdf : t -> float array
(** Fraction of samples per bin; sums to 1 (when non-empty). *)

val cdf : t -> float array
(** Cumulative fraction per bin; last element is 1 (when non-empty). *)

val quantile : t -> float -> float
(** [quantile t q] approximates the [q]-quantile (0..1) by linear
    interpolation within the containing bin. *)

val pp_rows : ?nonzero_only:bool -> Format.formatter -> t -> unit
(** One "lo value" row per bin of the PDF — the series a figure plots. *)
