type t = {
  lo : float;
  hi : float;
  width : float;
  counts : int array;
  mutable n : int;
  mutable clamped : int;
}

let create ~lo ~hi ~bins =
  if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
  if not (hi > lo) then invalid_arg "Histogram.create: hi must exceed lo";
  { lo; hi; width = (hi -. lo) /. float_of_int bins; counts = Array.make bins 0; n = 0; clamped = 0 }

let create_ints ~max =
  create ~lo:(-0.5) ~hi:(float_of_int max +. 0.5) ~bins:(max + 1)

let add t x =
  let bins = Array.length t.counts in
  let raw = int_of_float (floor ((x -. t.lo) /. t.width)) in
  let idx =
    if raw < 0 then begin t.clamped <- t.clamped + 1; 0 end
    else if raw >= bins then begin t.clamped <- t.clamped + 1; bins - 1 end
    else raw
  in
  t.counts.(idx) <- t.counts.(idx) + 1;
  t.n <- t.n + 1

let merge a b =
  if
    a.lo <> b.lo || a.hi <> b.hi
    || Array.length a.counts <> Array.length b.counts
  then invalid_arg "Histogram.merge: incompatible bin layouts";
  {
    a with
    counts = Array.mapi (fun i c -> c + b.counts.(i)) a.counts;
    n = a.n + b.n;
    clamped = a.clamped + b.clamped;
  }

let count t = t.n
let clamped t = t.clamped
let bin_count t = Array.length t.counts
let counts t = Array.copy t.counts
let bin_lo t i = t.lo +. (float_of_int i *. t.width)

let pdf t =
  let n = float_of_int (max t.n 1) in
  Array.map (fun c -> float_of_int c /. n) t.counts

let cdf t =
  let p = pdf t in
  let acc = ref 0.0 in
  Array.map
    (fun x ->
      acc := !acc +. x;
      !acc)
    p

let quantile t q =
  if t.n = 0 then nan
  else begin
    let target = q *. float_of_int t.n in
    let acc = ref 0.0 and result = ref t.hi in
    (try
       for i = 0 to Array.length t.counts - 1 do
         let next = !acc +. float_of_int t.counts.(i) in
         if next >= target then begin
           let frac =
             if t.counts.(i) = 0 then 0.0
             else (target -. !acc) /. float_of_int t.counts.(i)
           in
           result := bin_lo t i +. (frac *. t.width);
           raise Exit
         end;
         acc := next
       done
     with Exit -> ());
    !result
  end

let pp_rows ?(nonzero_only = false) fmt t =
  let p = pdf t in
  Array.iteri
    (fun i v ->
      if (not nonzero_only) || v > 0.0 then
        Format.fprintf fmt "%10.2f  %.5f@." (bin_lo t i +. (t.width /. 2.0)) v)
    p
