(** CAN as a {!Routing.S} substrate.

    The greedy step is {!Route.next_hop} (derived [route] ≡ {!Route.route_key}
    hop-for-hop); fallback candidates are the strictly-improving zone
    neighbors, closest first. A HIERAS ring re-splits the torus among the
    members' join points — the ring CANs of {!Layered}, behind the generic
    ring interface. There is no separate early exit: the layered walk's
    owner check after each ring loop is exactly {!Layered}'s
    global-zone-contains test. *)

type t

val make : net:Network.t -> lat:Topology.Latency.t -> t
val network : t -> Network.t

include Routing.S with type t := t
