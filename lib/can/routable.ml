module Base = struct
  type t = { net : Network.t; lat : Topology.Latency.t }

  let name = "can"
  let layered_name = "hieras-can"
  let size t = Network.size t.net
  let host t i = Network.host t.net i

  let link_latency t a b =
    Topology.Latency.host_latency t.lat (Network.host t.net a) (Network.host t.net b)

  let guard t = 4 * (Network.size t.net + 4)
  let owner_of_key t ~key = Network.owner_of_key t.net key

  let live_owner t ~is_alive ~key =
    (* ownership migrates to the live node whose zone is torus-closest to
       the key's point (lowest index on ties); with everyone alive that is
       the zone containing the point — the flat owner *)
    let point = Network.key_point t.net key in
    let n = Network.size t.net in
    let best = ref (-1) and best_d = ref infinity in
    for i = 0 to n - 1 do
      if is_alive i then begin
        let d = Zone.torus_distance (Network.zone t.net i) point in
        if d < !best_d then begin
          best := i;
          best_d := d
        end
      end
    done;
    if !best >= 0 then Some !best else None

  let step t ~cur ~key = Route.next_hop t.net ~point:(Network.key_point t.net key) ~cur

  (* strictly-improving neighbors, closest zone first (neighbor-list order on
     ties, so the head is exactly [Route.next_hop]'s first-minimal pick) *)
  let improving net ~point ~cur =
    let my = Zone.torus_distance (Network.zone net cur) point in
    Network.neighbors net cur
    |> List.filter_map (fun v ->
           let d = Zone.torus_distance (Network.zone net v) point in
           if d < my then Some (d, v) else None)
    |> List.stable_sort (fun (da, _) (db, _) -> Float.compare da db)
    |> List.map snd

  let candidates t ~cur ~key = improving t.net ~point:(Network.key_point t.net key) ~cur

  (* A HIERAS ring over a CAN subset is CAN again: re-split the torus among
     the members' join points (their zones nest — fewer members, larger
     zones), exactly as [Layered] builds its ring CANs. *)
  type ring = {
    r_net : Network.t; (* node i here is r_members.(i) globally *)
    r_members : int array;
    r_pos : (int, int) Hashtbl.t;
  }

  let make_ring t ~members =
    let members = Array.copy members in
    let pos = Hashtbl.create (2 * Array.length members) in
    Array.iteri (fun p node -> Hashtbl.replace pos node p) members;
    let net =
      Network.of_points
        ~hosts:(Array.map (Network.host t.net) members)
        ~points:(Array.map (Network.point t.net) members)
    in
    { r_net = net; r_members = members; r_pos = pos }

  let local rg cur = Hashtbl.find rg.r_pos cur

  let ring_stop t rg ~cur ~key =
    let point = Network.key_point t.net key in
    Zone.contains (Network.zone rg.r_net (local rg cur)) point

  let ring_step t rg ~cur ~key =
    let point = Network.key_point t.net key in
    rg.r_members.(Route.next_hop rg.r_net ~point ~cur:(local rg cur))

  let ring_candidates t rg ~cur ~key =
    let point = Network.key_point t.net key in
    improving rg.r_net ~point ~cur:(local rg cur) |> List.map (fun v -> rg.r_members.(v))

  (* the generic owner check after each ring walk IS the CAN early exit:
     the layer-k zone owner's global zone may already contain the point *)
  let early_finish _t ~cur:_ ~key:_ = None
end

include Routing.Extend (Base)

let make ~net ~lat = { Base.net; lat }
let network (t : t) = t.Base.net
