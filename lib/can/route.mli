(** CAN greedy routing with hop and latency accounting.

    Forward to the neighbor whose zone is closest (toroidal box distance) to
    the key's point until the current zone contains it. *)

type hop = { from_node : int; to_node : int; latency : float }

type result = {
  origin : int;
  point : float array;
  destination : int;
  hops : hop list;
  hop_count : int;
  latency : float;
}

val route :
  Network.t -> Topology.Latency.t -> origin:int -> point:float array -> result

val route_key :
  Network.t -> Topology.Latency.t -> origin:int -> key:Hashid.Id.t -> result

val next_hop : Network.t -> point:float array -> cur:int -> int
(** One greedy step: the neighbor whose zone is torus-closest to the point
    (first strictly-improving minimum in neighbor-list order), or [cur]
    itself on a greedy dead end. *)
