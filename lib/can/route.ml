type hop = { from_node : int; to_node : int; latency : float }

type result = {
  origin : int;
  point : float array;
  destination : int;
  hops : hop list;
  hop_count : int;
  latency : float;
}

(* one greedy step: the neighbor whose zone is torus-closest to the point,
   first-minimal wins; returns [cur] itself on a greedy dead end *)
let next_hop net ~point ~cur =
  let best = ref cur and best_d = ref (Zone.torus_distance (Network.zone net cur) point) in
  List.iter
    (fun v ->
      let d = Zone.torus_distance (Network.zone net v) point in
      if d < !best_d then begin
        best := v;
        best_d := d
      end)
    (Network.neighbors net cur);
  !best

let route net lat ~origin ~point =
  let hops = ref [] in
  let count = ref 0 in
  let total = ref 0.0 in
  let record from_node to_node =
    let l =
      Topology.Latency.host_latency lat (Network.host net from_node) (Network.host net to_node)
    in
    hops := { from_node; to_node; latency = l } :: !hops;
    incr count;
    total := !total +. l
  in
  let current = ref origin in
  let steps = ref 0 in
  let guard = 4 * (Network.size net + 4) in
  while not (Zone.contains (Network.zone net !current) point) do
    incr steps;
    if !steps > guard then failwith "Can.Route: routing did not terminate";
    let cur = !current in
    let best = next_hop net ~point ~cur in
    if best = cur then failwith "Can.Route: greedy dead end";
    record cur best;
    current := best
  done;
  {
    origin;
    point;
    destination = !current;
    hops = List.rev !hops;
    hop_count = !count;
    latency = !total;
  }

let route_key net lat ~origin ~key = route net lat ~origin ~point:(Network.key_point net key)
