(** Oracle-built Tapestry networks (Zhao, Kubiatowicz & Joseph,
    UCB//CSD-01-1141) — the second locality-aware DHT the paper's future
    work names.

    Tapestry is a Plaxton-style prefix-routing mesh. Like Pastry it resolves
    one base-16 digit per hop and fills its neighbor maps with topologically
    close candidates; {e unlike} Pastry it has no leaf set — a key's {e root}
    is determined by {e surrogate routing}: when no node matches the key's
    next digit at some level, the lookup deterministically tries the
    following digit values (mod 16) until a populated slot is found. The
    root is therefore a pure function of the id set, which this oracle
    computes directly.

    Routing walks the root's digit path: each hop moves to the
    topologically nearest node matching one more digit of that path, so a
    route takes at most [log16 n] hops. *)

type t

val build :
  space:Hashid.Id.space ->
  hosts:int array ->
  lat:Topology.Latency.t ->
  rng:Prng.Rng.t ->
  ?candidates_per_hop:int ->
  ?salt:string ->
  unit ->
  t
(** [space] width must be a multiple of 4. [candidates_per_hop] (default 16)
    bounds the proximity sampling when choosing among a level's matching
    nodes. *)

val space : t -> Hashid.Id.space
val size : t -> int
val id : t -> int -> Hashid.Id.t
val host : t -> int -> int

val root_of_key : t -> Hashid.Id.t -> int
(** The surrogate root: unique, path-independent owner of the key. *)

val root_path : t -> Hashid.Id.t -> int list
(** The digit sequence surrogate routing resolves for this key (diagnostic;
    its length bounds every route's hop count). *)

val link_latency : t -> int -> int -> float
(** Latency between two nodes' hosts (from the embedded oracle). *)

val key_group : t -> key:Hashid.Id.t -> len:int -> int array
(** The nodes whose identifiers match the key's first [len] base-16 digits
    (all nodes for [len = 0]; [\[||\]] when no node matches or the prefix
    levels stop earlier). Do not mutate the returned array. *)

val shared_digits : t -> int -> Hashid.Id.t -> int
(** Length of the common base-16 digit prefix of a node's identifier and a
    key. *)

val next_on_path : t -> path:int array -> cur:int -> int
(** One routing step: the proximity-closest node of {!path_candidates}.
    [path] is {!root_path} as an array; requires [cur] not to match the full
    path yet. *)

val path_candidates : t -> path:int array -> cur:int -> int list
(** The deterministic proximity sample at [cur]'s routing level — up to
    [candidates_per_hop] nodes matching one more digit of the root path,
    evenly strided through the level group — sorted closest-first (sample
    order on ties). The head is {!next_on_path}'s pick; the tail is the
    failover order for resilient routing. A pure function of the id set:
    routes never consult the build rng, so they are deterministic and safe
    to issue from parallel workers. *)

type hop = { from_node : int; to_node : int; latency : float }

type result = {
  origin : int;
  key : Hashid.Id.t;
  destination : int;
  hops : hop list;
  hop_count : int;
  latency : float;
}

val route : t -> origin:int -> key:Hashid.Id.t -> result
(** Ends at {!root_of_key}; each hop matches at least one more digit of the
    root path. *)
