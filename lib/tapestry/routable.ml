module Id = Hashid.Id

module Base = struct
  type t = Network.t

  let name = "tapestry"
  let layered_name = "hieras-tapestry"
  let size = Network.size
  let host = Network.host
  let link_latency = Network.link_latency
  let guard t = Id.digit_count4 (Network.space t) + 8
  let owner_of_key t ~key = Network.root_of_key t key

  (* Surrogate roots are a pure function of the id set: there is no
     secondary owner a lookup can be redirected to when the root dies, so a
     dead root means no live owner — Tapestry pays for its statelessness
     under failures (the tournament's resilience column shows it). *)
  let live_owner t ~is_alive ~key =
    let root = Network.root_of_key t key in
    if is_alive root then Some root else None

  let path_of t key = Array.of_list (Network.root_path t key)
  let step t ~cur ~key = Network.next_on_path t ~path:(path_of t key) ~cur
  let candidates t ~cur ~key = Network.path_candidates t ~path:(path_of t key) ~cur

  (* A HIERAS ring over a Tapestry subset: members on the identifier circle,
     with prefix-group shortcuts — in-ring nodes matching one more digit of
     the key and numerically closer, proximity-closest first — and circle
     neighbors as the guaranteed-progress fallback. *)
  type ring = { circle : Routing.Circle.t }

  let make_ring t ~members =
    { circle = Routing.Circle.make ~space:(Network.space t) ~id_of:(Network.id t) ~members }

  let ring_stop _t rg ~cur ~key = Routing.Circle.root rg.circle ~key = cur

  let ring_candidates t rg ~cur ~key =
    let sp = Network.space t in
    let r = Network.shared_digits t cur key in
    let my = Routing.num_dist sp (Network.id t cur) key in
    let cands =
      Network.key_group t ~key ~len:(r + 1)
      |> Array.to_list
      |> List.filter (fun c ->
             c <> cur
             && Routing.Circle.mem rg.circle c
             && Routing.num_dist sp (Network.id t c) key < my)
      |> List.map (fun c -> (Network.link_latency t cur c, c))
      |> List.sort (fun (da, ca) (db, cb) ->
             if da <> db then Float.compare da db else Int.compare ca cb)
      |> List.map snd
    in
    let tw = Routing.Circle.toward rg.circle ~cur ~key in
    if tw = cur || List.mem tw cands then cands else cands @ [ tw ]

  let ring_step t rg ~cur ~key =
    match ring_candidates t rg ~cur ~key with
    | next :: _ -> next
    | [] -> cur (* unreachable when [not (ring_stop ...)] *)

  let early_finish _t ~cur:_ ~key:_ = None
end

include Routing.Extend (Base)

let make net = net
let network (t : t) = t
