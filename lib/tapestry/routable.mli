(** Tapestry as a {!Routing.S} substrate.

    The greedy step is {!Network.next_on_path} (derived [route] ≡
    {!Network.route} hop-for-hop); fallback candidates are the deterministic
    proximity sample at the current routing level, closest first. HIERAS
    rings are identifier-circle member sets with prefix-group shortcuts.
    [live_owner] is the surrogate root when alive and [None] otherwise —
    surrogate ownership defines no failover owner, so Tapestry lookups fail
    outright when a key's root dies (visible in the tournament's resilience
    column). *)

type t

val make : Network.t -> t
val network : t -> Network.t

include Routing.S with type t := t
