module Id = Hashid.Id

type t = {
  space : Id.space;
  ids : Id.t array; (* sorted ascending *)
  hosts : int array;
  lat : Topology.Latency.t;
  rng : Prng.Rng.t;
  candidates_per_hop : int;
  (* levels.(r) maps an r+1-digit prefix (as a raw byte string of digit
     values) to the nodes whose identifiers start with it *)
  levels : (string, int array) Hashtbl.t array;
}

let space t = t.space
let size t = Array.length t.ids
let id t i = t.ids.(i)
let host t i = t.hosts.(i)

let digit t node r = Id.digit4 t.space t.ids.(node) r

let build ~space ~hosts ~lat ~rng ?(candidates_per_hop = 16) ?(salt = "tapestry-peer") () =
  if Id.bits space mod 4 <> 0 then
    invalid_arg "Tapestry.Network.build: identifier width must be a multiple of 4";
  let n = Array.length hosts in
  if n = 0 then invalid_arg "Tapestry.Network.build: empty network";
  let seen = Hashtbl.create (2 * n) in
  let raw_ids =
    Array.init n (fun i ->
        let rec fresh attempt =
          let id = Id.of_hash space (Printf.sprintf "%s:%d:%d" salt i attempt) in
          if Hashtbl.mem seen id then fresh (attempt + 1)
          else begin
            Hashtbl.replace seen id ();
            id
          end
        in
        fresh 0)
  in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> Id.compare raw_ids.(a) raw_ids.(b)) order;
  let ids = Array.map (fun i -> raw_ids.(i)) order in
  let hosts = Array.map (fun i -> hosts.(i)) order in
  (* build prefix groups level by level until all groups are singletons *)
  let max_rows = Id.digit_count4 space in
  let levels = ref [] in
  let current = ref [ ("", Array.init n (fun i -> i)) ] in
  let depth = ref 0 in
  let continue = ref true in
  while !continue && !depth < max_rows do
    let acc : (string, int list ref) Hashtbl.t = Hashtbl.create 64 in
    let any = ref false in
    List.iter
      (fun (prefix, group) ->
        if Array.length group > 1 then begin
          any := true;
          Array.iter
            (fun node ->
              let key = prefix ^ String.make 1 (Char.chr (Id.digit4 space ids.(node) !depth)) in
              match Hashtbl.find_opt acc key with
              | Some l -> l := node :: !l
              | None -> Hashtbl.replace acc key (ref [ node ]))
            group
        end)
      !current;
    if !any then begin
      let next = Hashtbl.create (Hashtbl.length acc) in
      Hashtbl.iter (fun k l -> Hashtbl.replace next k (Array.of_list !l)) acc;
      levels := next :: !levels;
      current := Hashtbl.fold (fun k v a -> (k, v) :: a) next [];
      incr depth
    end
    else continue := false
  done;
  {
    space;
    ids;
    hosts;
    lat;
    rng;
    candidates_per_hop;
    levels = Array.of_list (List.rev !levels);
  }

(* surrogate digit resolution: at level r with resolved prefix [prefix], try
   the key's digit, then successive digits mod 16, until a populated slot
   appears (one always does — the prefix itself is populated) *)
let surrogate_digit t ~level ~prefix ~want =
  let rec try_digit k =
    if k = 16 then invalid_arg "Tapestry: unpopulated prefix"
    else begin
      let d = (want + k) mod 16 in
      let key = prefix ^ String.make 1 (Char.chr d) in
      match Hashtbl.find_opt t.levels.(level) key with
      | Some _ -> d
      | None -> try_digit (k + 1)
    end
  in
  try_digit 0

let root_path t key =
  let rows = Array.length t.levels in
  let rec go level prefix acc =
    if level >= rows then List.rev acc
    else begin
      (* stop once the current prefix group is a singleton *)
      let group_size =
        if level = 0 then size t
        else
          match Hashtbl.find_opt t.levels.(level - 1) prefix with
          | Some g -> Array.length g
          | None -> 1
      in
      if group_size <= 1 then List.rev acc
      else begin
        let want = Id.digit4 t.space key level in
        let d = surrogate_digit t ~level ~prefix ~want in
        go (level + 1) (prefix ^ String.make 1 (Char.chr d)) (d :: acc)
      end
    end
  in
  go 0 "" []

let group_at t path_prefix =
  let level = String.length path_prefix - 1 in
  if level < 0 then Array.init (size t) (fun i -> i)
  else
    match Hashtbl.find_opt t.levels.(level) path_prefix with
    | Some g -> g
    | None -> [||]

let root_of_key t key =
  let path = root_path t key in
  let prefix = String.init (List.length path) (fun i -> Char.chr (List.nth path i)) in
  let g = group_at t prefix in
  if Array.length g <> 1 then failwith "Tapestry.root_of_key: root group not a singleton";
  g.(0)

let link_latency t a b = Topology.Latency.host_latency t.lat t.hosts.(a) t.hosts.(b)

let key_group t ~key ~len =
  if len = 0 then Array.init (size t) (fun i -> i)
  else if len - 1 >= Array.length t.levels then [||]
  else
    let prefix = String.init len (fun i -> Char.chr (Id.digit4 t.space key i)) in
    match Hashtbl.find_opt t.levels.(len - 1) prefix with Some g -> g | None -> [||]

let shared_digits t a key =
  let rows = Id.digit_count4 t.space in
  let aid = t.ids.(a) in
  let rec go r = if r < rows && Id.digit4 t.space aid r = Id.digit4 t.space key r then go (r + 1) else r in
  go 0

let matched_of_path t ~path node =
  let plen = Array.length path in
  let rec go r = if r < plen && digit t node r = path.(r) then go (r + 1) else r in
  go 0

(* the proximity sample at one routing level: [candidates_per_hop] nodes
   matching one more digit of the root path, evenly strided through the
   group — a pure function of the id set (identical to enumerating the whole
   group when it fits the budget), so routes are deterministic and safe to
   issue from parallel workers *)
let path_sample t ~path ~cur =
  let r = matched_of_path t ~path cur in
  let prefix = String.init (r + 1) (fun i -> Char.chr path.(i)) in
  let group = group_at t prefix in
  let m = Array.length group in
  if m = 0 then [||]
  else begin
    let tries = min m t.candidates_per_hop in
    Array.init tries (fun k -> group.(k * m / tries))
  end

let next_on_path t ~path ~cur =
  let cands = path_sample t ~path ~cur in
  if Array.length cands = 0 then failwith "Tapestry.route: root path group vanished";
  let best = ref cands.(0) and best_d = ref infinity in
  Array.iter
    (fun cand ->
      let d = link_latency t cur cand in
      if d < !best_d then begin
        best := cand;
        best_d := d
      end)
    cands;
  !best

let path_candidates t ~path ~cur =
  let cands = path_sample t ~path ~cur in
  (* closest first, sample order on latency ties: the head is exactly
     [next_on_path]'s first-strict-minimum pick *)
  Array.to_list cands
  |> List.mapi (fun k cand -> (link_latency t cur cand, k, cand))
  |> List.sort (fun (da, ka, _) (db, kb, _) ->
         if da <> db then Float.compare da db else Int.compare ka kb)
  |> List.map (fun (_, _, cand) -> cand)

type hop = { from_node : int; to_node : int; latency : float }

type result = {
  origin : int;
  key : Hashid.Id.t;
  destination : int;
  hops : hop list;
  hop_count : int;
  latency : float;
}

let route t ~origin ~key =
  let path = Array.of_list (root_path t key) in
  let plen = Array.length path in
  let hops = ref [] in
  let count = ref 0 in
  let total = ref 0.0 in
  let record from_node to_node =
    let l = link_latency t from_node to_node in
    hops := { from_node; to_node; latency = l } :: !hops;
    incr count;
    total := !total +. l
  in
  let current = ref origin in
  let steps = ref 0 in
  while matched_of_path t ~path !current < plen do
    incr steps;
    if !steps > plen + 4 then failwith "Tapestry.route: did not terminate";
    let cur = !current in
    let best = next_on_path t ~path ~cur in
    record cur best;
    current := best
  done;
  {
    origin;
    key;
    destination = !current;
    hops = List.rev !hops;
    hop_count = !count;
    latency = !total;
  }
