(** The unified routing core (ROADMAP "Unified routing core").

    Chord, Pastry, CAN and Tapestry each grew their own lookup plumbing;
    this module extracts the contract they all satisfy into one set of
    types and module signatures so that hierarchical layering
    ({!Hieras.Make}), conformance testing and the cross-algorithm
    tournament can be written once against {!S} instead of four times
    against four APIs.

    Two levels of signature:

    - {!ROUTABLE} is the {e consumer} interface: everything an experiment
      needs to issue lookups against an overlay (plain, analytic and
      failure-aware entry points plus the ownership oracles). Flat
      substrates and HIERAS-layered overlays both satisfy it, which is what
      lets the tournament treat "chord" and "hieras-over-can" as peers.
    - {!BASE} is the {e provider} interface: the per-substrate primitive
      step/candidate functions plus ring operations over an arbitrary
      member subset. {!Extend} derives a full {!S} (= {!BASE} + the
      {!ROUTABLE} entry points) from it, and [Hieras.Make] layers locality
      rings over any {!S}.

    Determinism: nothing in this module draws randomness; every derived
    route is a pure function of the substrate state and the key, so traces
    and tournament matrices are byte-stable across runs and [--jobs]. *)

(** {2 Shared result and policy types} *)

type hop = { from_node : int; to_node : int; latency : float; layer : int }
(** One overlay edge. Flat routes always use [layer = 1]; layered overlays
    tag hops with the HIERAS layer whose routing state chose them. *)

type result = {
  origin : int;
  key : Hashid.Id.t;
  destination : int;
  hops : hop list;
  hop_count : int;
  latency : float;
  hops_per_layer : int array;  (** index 0 = layer 1; flat: [\[| hop_count |\]] *)
  latency_per_layer : float array;
  finished_at_layer : int;  (** 1 for flat routes *)
}

type policy = {
  rpc_timeout_ms : float;
  max_retries : int;
  backoff_base_ms : float;
  backoff_mult : float;
  succ_window : int;
}
(** The failure-handling policy of resilient routing — identical in shape
    and defaults to [Chord.Lookup.policy] (PR 5), so fault experiments can
    carry one policy across all substrates. *)

val default_policy : policy
(** 500 ms timeout, 2 retries, 50 ms base backoff doubling, window 8. *)

val check_policy : policy -> unit
(** Raises [Invalid_argument] on an ill-formed policy. *)

val attempt_delay : policy -> int -> float
(** [attempt_delay p k] is the latency charged for contact attempt [k] on a
    dead node: the plain timeout for [k = 0], timeout + capped exponential
    backoff for retries — the same arithmetic as [Chord.Lookup]. *)

type attempt = {
  outcome : result option;  (** [None]: the lookup stalled (no live route) *)
  retries : int;
  timeouts : int;
  fallbacks : int;
  layer_escapes : int;  (** always 0 for flat substrates *)
  penalty_ms : float;
}

val num_dist : Hashid.Id.space -> Hashid.Id.t -> Hashid.Id.t -> float
(** Circular numerical distance |a - key| as a fraction of the identifier
    circle (min of the two directions) — Pastry's closeness metric, shared
    here so ring walks and ownership oracles agree on it bit-for-bit. *)

(** {2 Signatures} *)

(** The consumer contract: issue lookups, ask who owns a key. *)
module type ROUTABLE = sig
  type t

  val name : string
  (** Trace algo tag ("chord", "hieras-can", ...). *)

  val size : t -> int
  val host : t -> int -> int

  val owner_of_key : t -> key:Hashid.Id.t -> int
  (** Where every correct route of this overlay must end. *)

  val live_owner : t -> is_alive:(int -> bool) -> key:Hashid.Id.t -> int option
  (** The node a {e successful} resilient lookup must reach when part of the
      population is dead; [None] when the overlay defines no live owner
      (e.g. Tapestry's surrogate root is down). *)

  val route : ?trace:Obs.Trace.t -> t -> origin:int -> key:Hashid.Id.t -> result
  (** Ends at [owner_of_key]; emits Start/Hop/End on an enabled tracer. *)

  val route_hops_only : t -> origin:int -> key:Hashid.Id.t -> int * int
  (** [(hop_count, destination)] — the allocation-light analytic walk,
      hop-for-hop identical to {!route}. *)

  val route_resilient :
    ?trace:Obs.Trace.t ->
    ?policy:policy ->
    t ->
    is_alive:(int -> bool) ->
    origin:int ->
    key:Hashid.Id.t ->
    attempt
  (** Failure-aware routing against a liveness oracle. With everyone alive
      it follows {!route} hop-for-hop with zero penalty; under failures it
      probes dead preferred contacts (charging the full retry schedule) and
      falls back to secondary candidates. Raises [Invalid_argument] if the
      origin is dead. *)
end

(** The provider contract: one greedy step, its failover alternatives, and
    ring-restricted variants of both over an arbitrary member subset. *)
module type BASE = sig
  type t

  val name : string
  val layered_name : string
  (** Trace algo tag of the HIERAS layering over this substrate
      ("hieras" for Chord — the historical tag the goldens pin). *)

  val size : t -> int
  val host : t -> int -> int

  val link_latency : t -> int -> int -> float
  (** Latency of one overlay edge (host-to-host through the oracle). *)

  val guard : t -> int
  (** Step budget after which a (plain) walk is declared divergent. *)

  val owner_of_key : t -> key:Hashid.Id.t -> int
  val live_owner : t -> is_alive:(int -> bool) -> key:Hashid.Id.t -> int option

  val step : t -> cur:int -> key:Hashid.Id.t -> int
  (** The substrate's next hop from [cur] towards [key]; precondition
      [cur <> owner_of_key t ~key]. *)

  val candidates : t -> cur:int -> key:Hashid.Id.t -> int list
  (** Liveness-blind failover order for one step: the head is exactly
      {!step}'s choice, the tail the secondary contacts a resilient route
      may fall back to. The head equality is what makes the derived
      resilient route reproduce {!route} when everyone is alive. *)

  type ring
  (** Routing state restricted to one HIERAS ring's member subset. *)

  val make_ring : t -> members:int array -> ring
  (** [members] are substrate node indices (each node in at most one ring
      per layer); the ring keeps whatever per-member state its walk needs. *)

  val ring_stop : t -> ring -> cur:int -> key:Hashid.Id.t -> bool
  (** The ring walk's termination test: [cur] is the ring member where this
      layer can make no further progress towards [key]. *)

  val ring_step : t -> ring -> cur:int -> key:Hashid.Id.t -> int
  (** Next ring member towards [key]; precondition [not (ring_stop ...)]. *)

  val ring_candidates : t -> ring -> cur:int -> key:Hashid.Id.t -> int list
  (** Failover order within the ring; head = {!ring_step}'s choice. *)

  val early_finish : t -> cur:int -> key:Hashid.Id.t -> int option
  (** The paper's between-layer early exit: [Some next] when [cur]'s global
      successor knowledge already names the key's owner — the layered walk
      then records one final layer-1 hop to [next] and stops. *)
end

(** A full routing implementation: substrate primitives + derived routes. *)
module type S = sig
  include BASE

  val route : ?trace:Obs.Trace.t -> t -> origin:int -> key:Hashid.Id.t -> result
  val route_hops_only : t -> origin:int -> key:Hashid.Id.t -> int * int

  val route_resilient :
    ?trace:Obs.Trace.t ->
    ?policy:policy ->
    t ->
    is_alive:(int -> bool) ->
    origin:int ->
    key:Hashid.Id.t ->
    attempt
end

module Extend (B : BASE) : S with type t = B.t and type ring = B.ring
(** Derive the {!ROUTABLE} entry points from the substrate primitives:

    - [route] loops [step] until the owner, recording layer-1 hops with
      Start/Hop/End trace events;
    - [route_hops_only] is the same walk without accounting;
    - [route_resilient] walks [candidates], charging the retry schedule for
      each dead preferred contact, and succeeds exactly when it reaches
      [live_owner] within the guard budget.

    A substrate with a richer native implementation (Chord's PR 5
    successor-list logic) includes [Extend] and shadows the entry points
    with delegations. *)

(** {2 Identifier-circle rings}

    A generic ring representation for substrates whose native geometry has
    no subset-restricted form (Pastry's leaf sets, Tapestry's levels are
    global): members sorted on the identifier circle, walked by numerical
    closeness. Substrate adapters combine it with their own contact lists
    ({!Circle.toward} is only the guaranteed-progress fallback). *)
module Circle : sig
  type t

  val make : space:Hashid.Id.space -> id_of:(int -> Hashid.Id.t) -> members:int array -> t
  (** Members are substrate node indices with distinct identifiers. *)

  val size : t -> int
  val mem : t -> int -> bool

  val root : t -> key:Hashid.Id.t -> int
  (** The member numerically closest to the key (tie: smaller identifier) —
      where a circle walk stops. *)

  val toward : t -> cur:int -> key:Hashid.Id.t -> int
  (** The circle neighbor of [cur] in the shorter-arc direction of [key]:
      strictly closer numerically unless [cur] is already {!root} (the
      last hop may land exactly on the root at equal distance). *)
end
