module Id = Hashid.Id

type hop = { from_node : int; to_node : int; latency : float; layer : int }

type result = {
  origin : int;
  key : Hashid.Id.t;
  destination : int;
  hops : hop list;
  hop_count : int;
  latency : float;
  hops_per_layer : int array;
  latency_per_layer : float array;
  finished_at_layer : int;
}

type policy = {
  rpc_timeout_ms : float;
  max_retries : int;
  backoff_base_ms : float;
  backoff_mult : float;
  succ_window : int;
}

let default_policy =
  { rpc_timeout_ms = 500.0; max_retries = 2; backoff_base_ms = 50.0; backoff_mult = 2.0; succ_window = 8 }

let check_policy p =
  if
    p.rpc_timeout_ms <= 0.0 || p.max_retries < 0 || p.backoff_base_ms < 0.0
    || p.backoff_mult < 1.0 || p.succ_window < 1
  then invalid_arg "Routing: ill-formed resilience policy"

let attempt_delay p k =
  if k = 0 then p.rpc_timeout_ms
  else
    let backoff = p.backoff_base_ms *. (p.backoff_mult ** float_of_int (k - 1)) in
    Float.min backoff p.rpc_timeout_ms +. p.rpc_timeout_ms

type attempt = {
  outcome : result option;
  retries : int;
  timeouts : int;
  fallbacks : int;
  layer_escapes : int;
  penalty_ms : float;
}

let num_dist sp a key =
  let d = Id.distance_cw sp a key in
  Float.min d (1.0 -. d)

module type ROUTABLE = sig
  type t

  val name : string
  val size : t -> int
  val host : t -> int -> int
  val owner_of_key : t -> key:Hashid.Id.t -> int
  val live_owner : t -> is_alive:(int -> bool) -> key:Hashid.Id.t -> int option
  val route : ?trace:Obs.Trace.t -> t -> origin:int -> key:Hashid.Id.t -> result
  val route_hops_only : t -> origin:int -> key:Hashid.Id.t -> int * int

  val route_resilient :
    ?trace:Obs.Trace.t ->
    ?policy:policy ->
    t ->
    is_alive:(int -> bool) ->
    origin:int ->
    key:Hashid.Id.t ->
    attempt
end

module type BASE = sig
  type t

  val name : string
  val layered_name : string
  val size : t -> int
  val host : t -> int -> int
  val link_latency : t -> int -> int -> float
  val guard : t -> int
  val owner_of_key : t -> key:Hashid.Id.t -> int
  val live_owner : t -> is_alive:(int -> bool) -> key:Hashid.Id.t -> int option
  val step : t -> cur:int -> key:Hashid.Id.t -> int
  val candidates : t -> cur:int -> key:Hashid.Id.t -> int list

  type ring

  val make_ring : t -> members:int array -> ring
  val ring_stop : t -> ring -> cur:int -> key:Hashid.Id.t -> bool
  val ring_step : t -> ring -> cur:int -> key:Hashid.Id.t -> int
  val ring_candidates : t -> ring -> cur:int -> key:Hashid.Id.t -> int list
  val early_finish : t -> cur:int -> key:Hashid.Id.t -> int option
end

module type S = sig
  include BASE

  val route : ?trace:Obs.Trace.t -> t -> origin:int -> key:Hashid.Id.t -> result
  val route_hops_only : t -> origin:int -> key:Hashid.Id.t -> int * int

  val route_resilient :
    ?trace:Obs.Trace.t ->
    ?policy:policy ->
    t ->
    is_alive:(int -> bool) ->
    origin:int ->
    key:Hashid.Id.t ->
    attempt
end

module Extend (B : BASE) = struct
  include B

  let route ?(trace = Obs.Trace.disabled) t ~origin ~key =
    let owner = B.owner_of_key t ~key in
    let traced = Obs.Trace.enabled trace in
    let lid =
      if traced then Obs.Trace.start trace ~algo:B.name ~origin ~key:(Id.to_hex key) else 0
    in
    let hops = ref [] in
    let total = ref 0.0 in
    let count = ref 0 in
    let record from_node to_node =
      let l = B.link_latency t from_node to_node in
      if traced then
        Obs.Trace.hop trace ~lookup:lid ~seq:!count ~layer:1 ~from_node ~to_node ~latency_ms:l;
      hops := { from_node; to_node; latency = l; layer = 1 } :: !hops;
      total := !total +. l;
      incr count
    in
    let current = ref origin in
    let guard = B.guard t in
    while !current <> owner do
      if !count >= guard then failwith (B.name ^ ": routing did not terminate");
      let next = B.step t ~cur:!current ~key in
      record !current next;
      current := next
    done;
    if traced then
      Obs.Trace.finish trace ~lookup:lid ~destination:owner ~hops:!count ~latency_ms:!total
        ~finished_at_layer:1;
    {
      origin;
      key;
      destination = owner;
      hops = List.rev !hops;
      hop_count = !count;
      latency = !total;
      hops_per_layer = [| !count |];
      latency_per_layer = [| !total |];
      finished_at_layer = 1;
    }

  let route_hops_only t ~origin ~key =
    let owner = B.owner_of_key t ~key in
    let current = ref origin in
    let count = ref 0 in
    let guard = B.guard t in
    while !current <> owner do
      if !count >= guard then failwith (B.name ^ ": routing did not terminate");
      current := B.step t ~cur:!current ~key;
      incr count
    done;
    (!count, owner)

  let route_resilient ?(trace = Obs.Trace.disabled) ?(policy = default_policy) t ~is_alive ~origin
      ~key =
    check_policy policy;
    if not (is_alive origin) then invalid_arg (B.name ^ ".route_resilient: origin is dead");
    let traced = Obs.Trace.enabled trace in
    let lid =
      if traced then Obs.Trace.start trace ~algo:B.name ~origin ~key:(Id.to_hex key) else 0
    in
    let hops = ref [] in
    let total = ref 0.0 in
    let count = ref 0 in
    let pos = ref origin in
    let retries = ref 0 in
    let timeouts = ref 0 in
    let fallbacks = ref 0 in
    let penalty = ref 0.0 in
    let record from_node to_node =
      let l = B.link_latency t from_node to_node in
      if traced then
        Obs.Trace.hop trace ~lookup:lid ~seq:!count ~layer:1 ~from_node ~to_node ~latency_ms:l;
      hops := { from_node; to_node; latency = l; layer = 1 } :: !hops;
      total := !total +. l;
      incr count;
      pos := to_node
    in
    (* exhaust the full timeout + backoff schedule on a dead preferred contact,
       then record the fallback to the next candidate *)
    let probe at dead =
      timeouts := !timeouts + 1;
      for k = 0 to policy.max_retries do
        let d = attempt_delay policy k in
        retries := !retries + 1;
        penalty := !penalty +. d;
        total := !total +. d;
        if traced then
          Obs.Trace.recover trace ~lookup:lid ~kind:Obs.Trace.Retry ~layer:1 ~at_node:at
            ~dead_node:dead ~delay_ms:d
      done;
      fallbacks := !fallbacks + 1;
      if traced then
        Obs.Trace.recover trace ~lookup:lid ~kind:Obs.Trace.Fallback ~layer:1 ~at_node:at
          ~dead_node:dead ~delay_ms:0.0
    in
    let dest_opt =
      match B.live_owner t ~is_alive ~key with
      | None -> None
      | Some target ->
          let guard = B.guard t in
          let rec loop cur steps =
            if cur = target then Some cur
            else if steps > guard then None
            else
              let rec first_live = function
                | [] -> None
                | c :: rest ->
                    if is_alive c then Some c
                    else begin
                      probe cur c;
                      first_live rest
                    end
              in
              match first_live (B.candidates t ~cur ~key) with
              | None -> None (* locally partitioned: nothing live to forward to *)
              | Some next ->
                  record cur next;
                  loop next (steps + 1)
          in
          loop origin 1
    in
    if traced then
      Obs.Trace.finish trace ~lookup:lid
        ~destination:(Option.value ~default:!pos dest_opt)
        ~hops:!count ~latency_ms:!total ~finished_at_layer:1;
    let outcome =
      Option.map
        (fun destination ->
          {
            origin;
            key;
            destination;
            hops = List.rev !hops;
            hop_count = !count;
            latency = !total;
            hops_per_layer = [| !count |];
            latency_per_layer = [| !total |];
            finished_at_layer = 1;
          })
        dest_opt
    in
    {
      outcome;
      retries = !retries;
      timeouts = !timeouts;
      fallbacks = !fallbacks;
      layer_escapes = 0;
      penalty_ms = !penalty;
    }
end

module Circle = struct
  type t = {
    space : Id.space;
    members : int array; (* sorted by identifier, ascending *)
    ids : Id.t array;
    index : (int, int) Hashtbl.t; (* node -> position *)
  }

  let make ~space ~id_of ~members =
    let m = Array.length members in
    if m = 0 then invalid_arg "Routing.Circle.make: empty member set";
    let members = Array.copy members in
    Array.sort (fun a b -> Id.compare (id_of a) (id_of b)) members;
    let ids = Array.map id_of members in
    let index = Hashtbl.create (2 * m) in
    Array.iteri (fun p node -> Hashtbl.replace index node p) members;
    { space; members; ids; index }

  let size t = Array.length t.members
  let mem t node = Hashtbl.mem t.index node

  (* position of the first member whose id is >= key, wrapping to 0 *)
  let succ_pos t ~key =
    let m = Array.length t.ids in
    let lo = ref 0 and hi = ref m in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Id.compare t.ids.(mid) key < 0 then lo := mid + 1 else hi := mid
    done;
    if !lo = m then 0 else !lo

  let root t ~key =
    let m = Array.length t.members in
    if m = 1 then t.members.(0)
    else begin
      let up = succ_pos t ~key in
      let down = (up + m - 1) mod m in
      let du = num_dist t.space t.ids.(up) key in
      let dd = num_dist t.space t.ids.(down) key in
      if du < dd then t.members.(up)
      else if dd < du then t.members.(down)
      else if Id.compare t.ids.(up) t.ids.(down) < 0 then t.members.(up)
      else t.members.(down)
    end

  let pos_of t node =
    match Hashtbl.find_opt t.index node with
    | Some p -> p
    | None -> invalid_arg "Routing.Circle: not a member"

  let toward t ~cur ~key =
    let m = Array.length t.members in
    let p = pos_of t cur in
    let d_cw = Id.distance_cw t.space t.ids.(p) key in
    if d_cw = 0.0 then cur
    else if d_cw <= 0.5 then t.members.((p + 1) mod m)
    else t.members.((p + m - 1) mod m)
end
