module Id = Hashid.Id

type hop = { from_node : int; to_node : int; latency : float; layer : int }

type result = {
  origin : int;
  key : Hashid.Id.t;
  destination : int;
  hops : hop list;
  hop_count : int;
  latency : float;
  hops_per_layer : int array;
  latency_per_layer : float array;
  finished_at_layer : int;
}

(* One lower-ring loop (layer >= 2): greedy Chord steps inside the ring,
   stopping at the ring member that most closely PRECEDES the key. Stopping
   at the predecessor (never overshooting past the key) is what makes the
   multi-loop composition monotone: every layer only moves the message
   clockwise towards the key, so upper layers route across an ever smaller
   arc instead of re-routing around the circle. *)
let walk_ring_to_predecessor hnet ~layer ~start ~key ~record =
  let net = Hnetwork.chord hnet in
  let sp = Chord.Network.space net in
  let id_of i = Chord.Network.id net i in
  let current = ref start in
  let steps = ref 0 in
  let guard = 4 * (Id.bits sp + Chord.Network.size net) in
  let finished = ref false in
  while not !finished do
    incr steps;
    if !steps > guard then failwith "Hieras.Hlookup: ring loop did not terminate";
    let cur = !current in
    let succ = Hnetwork.ring_successor hnet ~layer cur in
    if Id.in_oc key ~lo:(id_of cur) ~hi:(id_of succ) then
      (* no ring member lies strictly between us and the key *)
      finished := true
    else begin
      let f = Hnetwork.closest_preceding_finger hnet ~layer cur ~key in
      let next = if f >= 0 && f <> cur then f else succ in
      record ~layer cur next;
      current := next
    end
  done;
  !current

(* Final loop on the global ring: ordinary Chord greedy routing ending at
   the key's global successor — the destination. *)
let walk_global hnet ~start ~key ~record =
  let net = Hnetwork.chord hnet in
  let sp = Chord.Network.space net in
  let id_of i = Chord.Network.id net i in
  let current = ref start in
  let steps = ref 0 in
  let guard = 4 * (Id.bits sp + Chord.Network.size net) in
  let finished = ref false in
  while not !finished do
    incr steps;
    if !steps > guard then failwith "Hieras.Hlookup: global loop did not terminate";
    let cur = !current in
    let succ = Chord.Network.successor net cur in
    if Id.in_oc key ~lo:(id_of cur) ~hi:(id_of succ) then begin
      record ~layer:1 cur succ;
      current := succ;
      finished := true
    end
    else begin
      let f = Chord.Network.closest_preceding_finger net cur ~key in
      let next = if f >= 0 && f <> cur then f else succ in
      record ~layer:1 cur next;
      current := next
    end
  done;
  !current

(* The multi-loop composition shared by [route] (latency + trace) and
   [route_hops_only] (the analytic mode): descend layers [depth .. 2], each
   stopping at the ring predecessor of the key, with the paper's early-exit
   check against the global successor between layers, then the global loop.
   Returns (destination, finished_at_layer); [record] sees every hop. *)
let walk_layers hnet ~origin ~key ~record =
  let net = Hnetwork.chord hnet in
  let depth = Hnetwork.depth hnet in
  let owner = Chord.Network.successor_of_key net key in
  let id_of i = Chord.Network.id net i in
  let current = ref origin in
  let finished_at = ref 1 in
  (try
     if !current = owner then begin
       (* the originator owns the key *)
       finished_at := depth;
       raise Exit
     end;
     for layer = depth downto 2 do
       current := walk_ring_to_predecessor hnet ~layer ~start:!current ~key ~record;
       (* early-exit check (paper §3.2: "predecessor and successor lists can
          be used to accelerate the process"): the ring-level predecessor
          knows its global successor; if that successor owns the key the
          routing finishes right here instead of climbing further. *)
       let succ1 = Chord.Network.successor net !current in
       if Id.in_oc key ~lo:(id_of !current) ~hi:(id_of succ1) then begin
         record ~layer:1 !current succ1;
         current := succ1;
         finished_at := layer;
         raise Exit
       end
     done;
     current := walk_global hnet ~start:!current ~key ~record;
     finished_at := 1
   with Exit -> ());
  assert (!current = owner);
  (!current, !finished_at)

let route ?(trace = Obs.Trace.disabled) hnet ~origin ~key =
  let net = Hnetwork.chord hnet in
  let lat = Hnetwork.latency_oracle hnet in
  let depth = Hnetwork.depth hnet in
  let traced = Obs.Trace.enabled trace in
  let lid =
    if traced then Obs.Trace.start trace ~algo:"hieras" ~origin ~key:(Id.to_hex key) else 0
  in
  let hops = ref [] in
  let count = ref 0 in
  let total = ref 0.0 in
  let per_hops = Array.make depth 0 in
  let per_lat = Array.make depth 0.0 in
  let record ~layer from_node to_node =
    let l =
      Topology.Latency.host_latency lat (Chord.Network.host net from_node)
        (Chord.Network.host net to_node)
    in
    if traced then
      Obs.Trace.hop trace ~lookup:lid ~seq:!count ~layer ~from_node ~to_node ~latency_ms:l;
    hops := { from_node; to_node; latency = l; layer } :: !hops;
    incr count;
    total := !total +. l;
    per_hops.(layer - 1) <- per_hops.(layer - 1) + 1;
    per_lat.(layer - 1) <- per_lat.(layer - 1) +. l
  in
  let destination, finished_at = walk_layers hnet ~origin ~key ~record in
  if traced then
    Obs.Trace.finish trace ~lookup:lid ~destination ~hops:!count ~latency_ms:!total
      ~finished_at_layer:finished_at;
  {
    origin;
    key;
    destination;
    hops = List.rev !hops;
    hop_count = !count;
    latency = !total;
    hops_per_layer = per_hops;
    latency_per_layer = per_lat;
    finished_at_layer = finished_at;
  }

let route_hops_only ?into hnet ~origin ~key =
  let depth = Hnetwork.depth hnet in
  let per_hops =
    match into with
    | None -> Array.make depth 0
    | Some a ->
      if Array.length a < depth then
        invalid_arg "Hieras.Hlookup.route_hops_only: scratch shorter than depth";
      Array.fill a 0 depth 0;
      a
  in
  let count = ref 0 in
  let record ~layer _ _ =
    incr count;
    per_hops.(layer - 1) <- per_hops.(layer - 1) + 1
  in
  let destination, finished_at = walk_layers hnet ~origin ~key ~record in
  (!count, per_hops, destination, finished_at)

let route_checked ?trace hnet ~origin ~key =
  let r = route ?trace hnet ~origin ~key in
  let owner = Chord.Network.successor_of_key (Hnetwork.chord hnet) key in
  if r.destination <> owner then
    failwith "Hieras.Hlookup.route_checked: destination is not the key's owner";
  r

(* ---- failure-aware routing --------------------------------------------- *)

type attempt = {
  outcome : result option;
  retries : int;
  timeouts : int;
  fallbacks : int;
  layer_escapes : int;
  penalty_ms : float;
}

let route_resilient ?(trace = Obs.Trace.disabled) ?(policy = Chord.Lookup.default_policy) hnet
    ~is_alive ~origin ~key =
  let { Chord.Lookup.rpc_timeout_ms; max_retries; backoff_base_ms; backoff_mult; succ_window } =
    policy
  in
  if
    rpc_timeout_ms <= 0.0 || max_retries < 0 || backoff_base_ms < 0.0 || backoff_mult < 1.0
    || succ_window < 1
  then invalid_arg "Hieras.Hlookup: ill-formed resilience policy";
  if not (is_alive origin) then invalid_arg "Hieras.Hlookup.route_resilient: origin is dead";
  let net = Hnetwork.chord hnet in
  let lat = Hnetwork.latency_oracle hnet in
  let depth = Hnetwork.depth hnet in
  let sp = Chord.Network.space net in
  let n = Chord.Network.size net in
  let id_of i = Chord.Network.id net i in
  let traced = Obs.Trace.enabled trace in
  let lid =
    if traced then Obs.Trace.start trace ~algo:"hieras" ~origin ~key:(Id.to_hex key) else 0
  in
  let hops = ref [] in
  let count = ref 0 in
  let total = ref 0.0 in
  let per_hops = Array.make depth 0 in
  let per_lat = Array.make depth 0.0 in
  let pos = ref origin in
  let retries = ref 0 in
  let timeouts = ref 0 in
  let fallbacks = ref 0 in
  let escapes = ref 0 in
  let penalty = ref 0.0 in
  let record ~layer from_node to_node =
    let l =
      Topology.Latency.host_latency lat (Chord.Network.host net from_node)
        (Chord.Network.host net to_node)
    in
    if traced then
      Obs.Trace.hop trace ~lookup:lid ~seq:!count ~layer ~from_node ~to_node ~latency_ms:l;
    hops := { from_node; to_node; latency = l; layer } :: !hops;
    incr count;
    total := !total +. l;
    per_hops.(layer - 1) <- per_hops.(layer - 1) + 1;
    per_lat.(layer - 1) <- per_lat.(layer - 1) +. l;
    pos := to_node
  in
  let fallback ~layer at dead =
    fallbacks := !fallbacks + 1;
    if traced then
      Obs.Trace.recover trace ~lookup:lid ~kind:Obs.Trace.Fallback ~layer ~at_node:at
        ~dead_node:dead ~delay_ms:0.0
  in
  let probe ~layer at dead =
    timeouts := !timeouts + 1;
    for k = 0 to max_retries do
      let d = Chord.Lookup.attempt_delay policy k in
      retries := !retries + 1;
      penalty := !penalty +. d;
      total := !total +. d;
      if traced then
        Obs.Trace.recover trace ~lookup:lid ~kind:Obs.Trace.Retry ~layer ~at_node:at
          ~dead_node:dead ~delay_ms:d
    done;
    fallback ~layer at dead
  in
  let escape ~layer at dead =
    escapes := !escapes + 1;
    if traced then
      Obs.Trace.recover trace ~lookup:lid ~kind:Obs.Trace.Layer_escape ~layer ~at_node:at
        ~dead_node:dead ~delay_ms:0.0
  in
  let guard = 4 * (Id.bits sp + n) in
  (* One lower-ring loop under failures. Returns the stop position; [true]
     means the ring was found locally partitioned (>= succ_window dead ring
     successors in a row) and the walk escaped a layer early. *)
  let walk_ring_resilient ~layer ~start =
    let rec go cur steps =
      if steps > guard then failwith "Hieras.Hlookup: resilient ring loop did not terminate";
      (* first live node along the ring-successor chain, within the policy
         window; liveness of the chain is heartbeat-fresh, skips are free *)
      let rec chain node k skipped =
        if k >= succ_window then `Partitioned
        else
          let s = Hnetwork.ring_successor hnet ~layer node in
          if s = cur then `Wrapped (* every other ring member in reach is dead *)
          else if is_alive s then `Live (s, List.rev skipped)
          else chain s (k + 1) (s :: skipped)
      in
      match chain cur 0 [] with
      | `Wrapped -> (cur, false)
      | `Partitioned ->
          escape ~layer cur (Hnetwork.ring_successor hnet ~layer cur);
          (cur, true)
      | `Live (s, skipped) ->
          if Id.in_oc key ~lo:(id_of cur) ~hi:(id_of s) then begin
            (* no live ring member strictly between us and the key *)
            List.iter (fun d -> fallback ~layer cur d) skipped;
            (cur, false)
          end
          else begin
            let candidates = Hnetwork.preceding_candidates hnet ~layer cur ~key in
            let rec try_fingers = function
              | [] -> None
              | f :: rest ->
                  if is_alive f then Some f
                  else begin
                    probe ~layer cur f;
                    try_fingers rest
                  end
            in
            match try_fingers candidates with
            | Some next ->
                record ~layer cur next;
                go next (steps + 1)
            | None ->
                List.iter (fun d -> fallback ~layer cur d) skipped;
                record ~layer cur s;
                go s (steps + 1)
          end
    in
    go start 1
  in
  (* Early-exit check between layers, against the first live global
     successor instead of just the immediate one. *)
  let early_exit p =
    let snth k = Chord.Network.succ_list_nth net p k in
    let llen = Chord.Network.succ_list_len net in
    let rec first_live i =
      if i >= llen then None else if is_alive (snth i) then Some i else first_live (i + 1)
    in
    match first_live 0 with
    | Some i when Id.in_oc key ~lo:(id_of p) ~hi:(id_of (snth i)) ->
        for j = 0 to i - 1 do
          fallback ~layer:1 p (snth j)
        done;
        record ~layer:1 p (snth i);
        Some (snth i)
    | _ -> None
  in
  (* Final loop on the global ring: the resilient Chord walk, tagged layer 1. *)
  let rec global cur steps =
    if steps > guard then failwith "Hieras.Hlookup: resilient global loop did not terminate";
    let snth k = Chord.Network.succ_list_nth net cur k in
    let llen = Chord.Network.succ_list_len net in
    let rec first_live i =
      if i >= llen then None else if is_alive (snth i) then Some i else first_live (i + 1)
    in
    let emit_skips upto =
      for j = 0 to upto - 1 do
        fallback ~layer:1 cur (snth j)
      done
    in
    match first_live 0 with
    | Some i when Id.in_oc key ~lo:(id_of cur) ~hi:(id_of (snth i)) ->
        emit_skips i;
        record ~layer:1 cur (snth i);
        Some (snth i)
    | s_opt -> (
        let candidates = Chord.Network.preceding_candidates net cur ~key in
        let rec try_fingers = function
          | [] -> None
          | f :: rest ->
              if is_alive f then Some f
              else begin
                probe ~layer:1 cur f;
                try_fingers rest
              end
        in
        match try_fingers candidates with
        | Some next ->
            record ~layer:1 cur next;
            global next (steps + 1)
        | None -> (
            match s_opt with
            | Some i ->
                emit_skips i;
                record ~layer:1 cur (snth i);
                global (snth i) (steps + 1)
            | None -> None (* locally partitioned global ring: stalled *)))
  in
  let dest = ref None in
  let finished_at = ref 1 in
  (try
     if Id.in_oc key ~lo:(id_of (Chord.Network.predecessor net origin)) ~hi:(id_of origin)
     then begin
       dest := Some origin;
       finished_at := depth;
       raise Exit
     end;
     let current = ref origin in
     for layer = depth downto 2 do
       let p, _escaped = walk_ring_resilient ~layer ~start:!current in
       current := p;
       match early_exit p with
       | Some d ->
           dest := Some d;
           finished_at := layer;
           raise Exit
       | None -> ()
     done;
     dest := global !current 1
   with Exit -> ());
  if traced then
    Obs.Trace.finish trace ~lookup:lid
      ~destination:(Option.value ~default:!pos !dest)
      ~hops:!count ~latency_ms:!total ~finished_at_layer:!finished_at;
  let outcome =
    Option.map
      (fun destination ->
        {
          origin;
          key;
          destination;
          hops = List.rev !hops;
          hop_count = !count;
          latency = !total;
          hops_per_layer = per_hops;
          latency_per_layer = per_lat;
          finished_at_layer = !finished_at;
        })
      !dest
  in
  {
    outcome;
    retries = !retries;
    timeouts = !timeouts;
    fallbacks = !fallbacks;
    layer_escapes = !escapes;
    penalty_ms = !penalty;
  }
