module Id = Hashid.Id

type hop = { from_node : int; to_node : int; latency : float; layer : int }

type result = {
  origin : int;
  key : Hashid.Id.t;
  destination : int;
  hops : hop list;
  hop_count : int;
  latency : float;
  hops_per_layer : int array;
  latency_per_layer : float array;
  finished_at_layer : int;
}

(* One lower-ring loop (layer >= 2): greedy Chord steps inside the ring,
   stopping at the ring member that most closely PRECEDES the key. Stopping
   at the predecessor (never overshooting past the key) is what makes the
   multi-loop composition monotone: every layer only moves the message
   clockwise towards the key, so upper layers route across an ever smaller
   arc instead of re-routing around the circle. *)
let walk_ring_to_predecessor hnet ~layer ~start ~key ~record =
  let net = Hnetwork.chord hnet in
  let sp = Chord.Network.space net in
  let id_of i = Chord.Network.id net i in
  let current = ref start in
  let steps = ref 0 in
  let guard = 4 * (Id.bits sp + Chord.Network.size net) in
  let finished = ref false in
  while not !finished do
    incr steps;
    if !steps > guard then failwith "Hieras.Hlookup: ring loop did not terminate";
    let cur = !current in
    let succ = Hnetwork.ring_successor hnet ~layer cur in
    if Id.in_oc key ~lo:(id_of cur) ~hi:(id_of succ) then
      (* no ring member lies strictly between us and the key *)
      finished := true
    else begin
      let next =
        match
          Chord.Finger_table.closest_preceding
            (Hnetwork.finger_table hnet ~layer cur)
            ~id_of ~self:(id_of cur) ~key
        with
        | Some next when next <> cur -> next
        | _ -> succ
      in
      record ~layer cur next;
      current := next
    end
  done;
  !current

(* Final loop on the global ring: ordinary Chord greedy routing ending at
   the key's global successor — the destination. *)
let walk_global hnet ~start ~key ~record =
  let net = Hnetwork.chord hnet in
  let sp = Chord.Network.space net in
  let id_of i = Chord.Network.id net i in
  let current = ref start in
  let steps = ref 0 in
  let guard = 4 * (Id.bits sp + Chord.Network.size net) in
  let finished = ref false in
  while not !finished do
    incr steps;
    if !steps > guard then failwith "Hieras.Hlookup: global loop did not terminate";
    let cur = !current in
    let succ = Chord.Network.successor net cur in
    if Id.in_oc key ~lo:(id_of cur) ~hi:(id_of succ) then begin
      record ~layer:1 cur succ;
      current := succ;
      finished := true
    end
    else begin
      let next =
        match
          Chord.Finger_table.closest_preceding
            (Chord.Network.finger_table net cur)
            ~id_of ~self:(id_of cur) ~key
        with
        | Some next when next <> cur -> next
        | _ -> succ
      in
      record ~layer:1 cur next;
      current := next
    end
  done;
  !current

let route ?(trace = Obs.Trace.disabled) hnet ~origin ~key =
  let net = Hnetwork.chord hnet in
  let lat = Hnetwork.latency_oracle hnet in
  let depth = Hnetwork.depth hnet in
  let owner = Chord.Network.successor_of_key net key in
  let id_of i = Chord.Network.id net i in
  let traced = Obs.Trace.enabled trace in
  let lid =
    if traced then Obs.Trace.start trace ~algo:"hieras" ~origin ~key:(Id.to_hex key) else 0
  in
  let hops = ref [] in
  let count = ref 0 in
  let total = ref 0.0 in
  let per_hops = Array.make depth 0 in
  let per_lat = Array.make depth 0.0 in
  let record ~layer from_node to_node =
    let l =
      Topology.Latency.host_latency lat (Chord.Network.host net from_node)
        (Chord.Network.host net to_node)
    in
    if traced then
      Obs.Trace.hop trace ~lookup:lid ~seq:!count ~layer ~from_node ~to_node ~latency_ms:l;
    hops := { from_node; to_node; latency = l; layer } :: !hops;
    incr count;
    total := !total +. l;
    per_hops.(layer - 1) <- per_hops.(layer - 1) + 1;
    per_lat.(layer - 1) <- per_lat.(layer - 1) +. l
  in
  let current = ref origin in
  let finished_at = ref 1 in
  (try
     if !current = owner then begin
       (* the originator owns the key *)
       finished_at := depth;
       raise Exit
     end;
     for layer = depth downto 2 do
       current := walk_ring_to_predecessor hnet ~layer ~start:!current ~key ~record;
       (* early-exit check (paper §3.2: "predecessor and successor lists can
          be used to accelerate the process"): the ring-level predecessor
          knows its global successor; if that successor owns the key the
          routing finishes right here instead of climbing further. *)
       let succ1 = Chord.Network.successor net !current in
       if Id.in_oc key ~lo:(id_of !current) ~hi:(id_of succ1) then begin
         record ~layer:1 !current succ1;
         current := succ1;
         finished_at := layer;
         raise Exit
       end
     done;
     current := walk_global hnet ~start:!current ~key ~record;
     finished_at := 1
   with Exit -> ());
  assert (!current = owner);
  if traced then
    Obs.Trace.finish trace ~lookup:lid ~destination:!current ~hops:!count ~latency_ms:!total
      ~finished_at_layer:!finished_at;
  {
    origin;
    key;
    destination = !current;
    hops = List.rev !hops;
    hop_count = !count;
    latency = !total;
    hops_per_layer = per_hops;
    latency_per_layer = per_lat;
    finished_at_layer = !finished_at;
  }

let route_checked ?trace hnet ~origin ~key =
  let r = route ?trace hnet ~origin ~key in
  let owner = Chord.Network.successor_of_key (Hnetwork.chord hnet) key in
  if r.destination <> owner then
    failwith "Hieras.Hlookup.route_checked: destination is not the key's owner";
  r
