(* HIERAS layering as a functor over any [Routing.S] substrate (the
   tentpole of the unified routing core). The layer structure — landmark
   binning, refinement chains, one ring per order string per layer — is
   exactly [Hnetwork.build]'s, and the walk is exactly [Hlookup]'s
   multi-loop composition, but both are expressed through the substrate's
   ring primitives: instantiated with [Chord.Routable] the routes (and
   trace bytes) reproduce [Hlookup] over [Hnetwork] hop for hop; with
   [Can.Routable] they implement the paper's §3.2 HIERAS-over-CAN sketch
   (= [Can.Layered]'s walk, plus tracing and resilience). *)

module Id = Hashid.Id

module Make (R : Routing.S) = struct
  type ring = { members : int array; r : R.ring }

  type t = {
    base : R.t;
    depth : int;
    orders : string array array; (* orders.(k).(node), k = layer - 2 *)
    rings : (string, ring) Hashtbl.t array;
    ring_of : ring array array; (* ring_of.(k).(node) *)
  }

  let name = R.layered_name

  let build ~base ~lat ~landmarks ~depth ?measure () =
    if depth < 2 then invalid_arg "Hieras.Make: depth must be >= 2";
    let n = R.size base in
    let measure =
      match measure with
      | Some f -> f
      | None -> fun ~host -> Binning.Landmark.measure lat landmarks ~host
    in
    let chain = Binning.Scheme.refinement_chain ~depth in
    let vectors = Array.init n (fun i -> measure ~host:(R.host base i)) in
    let orders =
      Array.init (depth - 1) (fun k ->
          Array.init n (fun i -> Binning.Scheme.order chain.(k) vectors.(i)))
    in
    let rings = Array.init (depth - 1) (fun _ -> Hashtbl.create 64) in
    for k = 0 to depth - 2 do
      let groups : (string, int list ref) Hashtbl.t = Hashtbl.create 64 in
      (* prepending from n-1 downto 0 keeps members ascending by node index *)
      for i = n - 1 downto 0 do
        let o = orders.(k).(i) in
        match Hashtbl.find_opt groups o with
        | Some l -> l := i :: !l
        | None -> Hashtbl.replace groups o (ref [ i ])
      done;
      Hashtbl.iter
        (fun o l ->
          let members = Array.of_list !l in
          Hashtbl.replace rings.(k) o { members; r = R.make_ring base ~members })
        groups
    done;
    let ring_of =
      Array.init (depth - 1) (fun k ->
          Array.init n (fun node -> Hashtbl.find rings.(k) orders.(k).(node)))
    in
    { base; depth; orders; rings; ring_of }

  let base t = t.base
  let depth t = t.depth
  let size t = R.size t.base
  let host t i = R.host t.base i

  let check_layer t layer =
    if layer < 2 || layer > t.depth then invalid_arg "Hieras.Make: layer out of range"

  let order_of_node t ~layer node =
    check_layer t layer;
    t.orders.(layer - 2).(node)

  let ring_count t ~layer =
    check_layer t layer;
    Hashtbl.length t.rings.(layer - 2)

  let ring_members t ~layer node =
    check_layer t layer;
    Array.copy t.ring_of.(layer - 2).(node).members

  let ring_size_of_node t ~layer node =
    check_layer t layer;
    Array.length t.ring_of.(layer - 2).(node).members

  let owner_of_key t ~key = R.owner_of_key t.base ~key
  let live_owner t ~is_alive ~key = R.live_owner t.base ~is_alive ~key

  (* The multi-loop composition of [Hlookup.walk_layers]: descend layers
     [depth .. 2], each ring walk stopping where the layer makes no further
     progress, with the substrate's early-exit check between layers, then
     the substrate's flat walk. Returns (destination, finished_at_layer). *)
  let walk_layers t ~origin ~key ~record =
    let owner = R.owner_of_key t.base ~key in
    let guard = R.guard t.base in
    let current = ref origin in
    let finished_at = ref 1 in
    (try
       if !current = owner then begin
         (* the originator owns the key *)
         finished_at := t.depth;
         raise Exit
       end;
       for layer = t.depth downto 2 do
         let rg = t.ring_of.(layer - 2).(!current) in
         let steps = ref 0 in
         while not (R.ring_stop t.base rg.r ~cur:!current ~key) do
           incr steps;
           if !steps > guard then failwith "Hieras.Make: ring loop did not terminate";
           let next = R.ring_step t.base rg.r ~cur:!current ~key in
           record ~layer !current next;
           current := next
         done;
         (* the layer-k stop may itself own the key (CAN's zone check); for
            circle substrates ring stops precede the key strictly, so this
            never fires and chord walks stay golden-identical *)
         if !current = owner then begin
           finished_at := layer;
           raise Exit
         end;
         match R.early_finish t.base ~cur:!current ~key with
         | Some next ->
             record ~layer:1 !current next;
             current := next;
             finished_at := layer;
             raise Exit
         | None -> ()
       done;
       let steps = ref 0 in
       while !current <> owner do
         incr steps;
         if !steps > guard then failwith "Hieras.Make: global loop did not terminate";
         let next = R.step t.base ~cur:!current ~key in
         record ~layer:1 !current next;
         current := next
       done;
       finished_at := 1
     with Exit -> ());
    assert (!current = owner);
    (!current, !finished_at)

  let route ?(trace = Obs.Trace.disabled) t ~origin ~key =
    let traced = Obs.Trace.enabled trace in
    let lid =
      if traced then Obs.Trace.start trace ~algo:name ~origin ~key:(Id.to_hex key) else 0
    in
    let hops = ref [] in
    let count = ref 0 in
    let total = ref 0.0 in
    let per_hops = Array.make t.depth 0 in
    let per_lat = Array.make t.depth 0.0 in
    let record ~layer from_node to_node =
      let l = R.link_latency t.base from_node to_node in
      if traced then
        Obs.Trace.hop trace ~lookup:lid ~seq:!count ~layer ~from_node ~to_node ~latency_ms:l;
      hops := { Routing.from_node; to_node; latency = l; layer } :: !hops;
      incr count;
      total := !total +. l;
      per_hops.(layer - 1) <- per_hops.(layer - 1) + 1;
      per_lat.(layer - 1) <- per_lat.(layer - 1) +. l
    in
    let destination, finished_at = walk_layers t ~origin ~key ~record in
    if traced then
      Obs.Trace.finish trace ~lookup:lid ~destination ~hops:!count ~latency_ms:!total
        ~finished_at_layer:finished_at;
    {
      Routing.origin;
      key;
      destination;
      hops = List.rev !hops;
      hop_count = !count;
      latency = !total;
      hops_per_layer = per_hops;
      latency_per_layer = per_lat;
      finished_at_layer = finished_at;
    }

  let route_hops ?into t ~origin ~key =
    let per_hops =
      match into with
      | Some a ->
          if Array.length a < t.depth then
            invalid_arg "Hieras.Make.route_hops: scratch buffer shorter than depth";
          Array.fill a 0 t.depth 0;
          a
      | None -> Array.make t.depth 0
    in
    let count = ref 0 in
    let record ~layer _ _ =
      incr count;
      per_hops.(layer - 1) <- per_hops.(layer - 1) + 1
    in
    let destination, finished_at = walk_layers t ~origin ~key ~record in
    (!count, per_hops, destination, finished_at)

  let route_hops_only t ~origin ~key =
    let count = ref 0 in
    let record ~layer:_ _ _ = incr count in
    let destination, _ = walk_layers t ~origin ~key ~record in
    (!count, destination)

  let route_resilient ?(trace = Obs.Trace.disabled) ?(policy = Routing.default_policy) t
      ~is_alive ~origin ~key =
    Routing.check_policy policy;
    if not (is_alive origin) then invalid_arg (name ^ ".route_resilient: origin is dead");
    let traced = Obs.Trace.enabled trace in
    let lid =
      if traced then Obs.Trace.start trace ~algo:name ~origin ~key:(Id.to_hex key) else 0
    in
    let hops = ref [] in
    let count = ref 0 in
    let total = ref 0.0 in
    let per_hops = Array.make t.depth 0 in
    let per_lat = Array.make t.depth 0.0 in
    let pos = ref origin in
    let retries = ref 0 in
    let timeouts = ref 0 in
    let fallbacks = ref 0 in
    let escapes = ref 0 in
    let penalty = ref 0.0 in
    let record ~layer from_node to_node =
      let l = R.link_latency t.base from_node to_node in
      if traced then
        Obs.Trace.hop trace ~lookup:lid ~seq:!count ~layer ~from_node ~to_node ~latency_ms:l;
      hops := { Routing.from_node; to_node; latency = l; layer } :: !hops;
      incr count;
      total := !total +. l;
      per_hops.(layer - 1) <- per_hops.(layer - 1) + 1;
      per_lat.(layer - 1) <- per_lat.(layer - 1) +. l;
      pos := to_node
    in
    let probe ~layer at dead =
      timeouts := !timeouts + 1;
      for k = 0 to policy.Routing.max_retries do
        let d = Routing.attempt_delay policy k in
        retries := !retries + 1;
        penalty := !penalty +. d;
        total := !total +. d;
        if traced then
          Obs.Trace.recover trace ~lookup:lid ~kind:Obs.Trace.Retry ~layer ~at_node:at
            ~dead_node:dead ~delay_ms:d
      done;
      fallbacks := !fallbacks + 1;
      if traced then
        Obs.Trace.recover trace ~lookup:lid ~kind:Obs.Trace.Fallback ~layer ~at_node:at
          ~dead_node:dead ~delay_ms:0.0
    in
    let escape ~layer at dead =
      escapes := !escapes + 1;
      if traced then
        Obs.Trace.recover trace ~lookup:lid ~kind:Obs.Trace.Layer_escape ~layer ~at_node:at
          ~dead_node:dead ~delay_ms:0.0
    in
    let rec first_live ~layer at = function
      | [] -> None
      | c :: rest ->
          if is_alive c then Some c
          else begin
            probe ~layer at c;
            first_live ~layer at rest
          end
    in
    let guard = R.guard t.base in
    let dest = ref None in
    let finished_at = ref 1 in
    (match R.live_owner t.base ~is_alive ~key with
    | None -> () (* no live owner: the lookup cannot succeed *)
    | Some target -> (
        let current = ref origin in
        try
          if origin = target then begin
            dest := Some origin;
            finished_at := t.depth;
            raise Exit
          end;
          for layer = t.depth downto 2 do
            let rg = t.ring_of.(layer - 2).(!current) in
            let steps = ref 0 in
            let walking = ref true in
            while !walking do
              let cur = !current in
              if R.ring_stop t.base rg.r ~cur ~key then walking := false
              else begin
                incr steps;
                if !steps > guard then begin
                  escape ~layer cur cur;
                  walking := false
                end
                else
                  match first_live ~layer cur (R.ring_candidates t.base rg.r ~cur ~key) with
                  | Some next ->
                      record ~layer cur next;
                      current := next
                  | None ->
                      (* no live in-ring route: climb a layer early *)
                      escape ~layer cur cur;
                      walking := false
              end
            done;
            (* the target check mirrors [walk_layers]'s post-walk owner check
               (not a per-step shortcut): with everyone alive the resilient
               walk must replay [route] hop for hop *)
            if !current = target then begin
              dest := Some target;
              finished_at := layer;
              raise Exit
            end;
            match R.early_finish t.base ~cur:!current ~key with
            | Some next ->
                if is_alive next then begin
                  record ~layer:1 !current next;
                  current := next;
                  if next = target then begin
                    dest := Some target;
                    finished_at := layer;
                    raise Exit
                  end
                end
                else probe ~layer:1 !current next
            | None -> ()
          done;
          let steps = ref 0 in
          let live = ref true in
          while !live && !current <> target do
            incr steps;
            if !steps > guard then live := false
            else
              match first_live ~layer:1 !current (R.candidates t.base ~cur:!current ~key) with
              | Some next ->
                  record ~layer:1 !current next;
                  current := next
              | None -> live := false
          done;
          if !live then begin
            dest := Some target;
            finished_at := 1
          end
        with Exit -> ()));
    if traced then
      Obs.Trace.finish trace ~lookup:lid
        ~destination:(Option.value ~default:!pos !dest)
        ~hops:!count ~latency_ms:!total ~finished_at_layer:!finished_at;
    let outcome =
      Option.map
        (fun destination ->
          {
            Routing.origin;
            key;
            destination;
            hops = List.rev !hops;
            hop_count = !count;
            latency = !total;
            hops_per_layer = per_hops;
            latency_per_layer = per_lat;
            finished_at_layer = !finished_at;
          })
        !dest
    in
    {
      Routing.outcome;
      retries = !retries;
      timeouts = !timeouts;
      fallbacks = !fallbacks;
      layer_escapes = !escapes;
      penalty_ms = !penalty;
    }
end
