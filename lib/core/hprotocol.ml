module Id = Hashid.Id
module Engine = Simnet.Engine
module Netspan = Obs.Netspan

type config = {
  space : Id.space;
  depth : int;
  stabilize_every : float;
  fix_fingers_every : float;
  check_pred_every : float;
  fingers_per_round : int;
  succ_list_len : int;
  rpc_timeout : float;
  lookup_retries : int;
  ring_check_every : float;
  stability_k : int;
  adaptive : bool;
  backoff_max : float;
}

let default_config space ~depth =
  {
    space;
    depth;
    stabilize_every = 500.0;
    fix_fingers_every = 500.0;
    check_pred_every = 1000.0;
    fingers_per_round = 8;
    succ_list_len = 4;
    rpc_timeout = 2000.0;
    lookup_retries = 3;
    ring_check_every = 2000.0;
    stability_k = 3;
    adaptive = false;
    backoff_max = 8.0;
  }

type peer = { paddr : int; pid : Id.t }

type layer_state = {
  mutable pred : peer option;
  mutable succs : peer list;
  fingers : peer option array;
  mutable next_finger : int;
  mutable succ_suspect : int;
      (* consecutive stabilize timeouts against the current successor *)
}

type pnode = {
  addr : int;
  id : Id.t;
  orders : string array; (* orders.(k-1) = ring name digits at paper layer k+1 *)
  layers : layer_state array; (* layers.(0) = global *)
  stored : (string, Ring_table.t) Hashtbl.t; (* key = Ring_name.to_string *)
  replicas : (string, Ring_table.t) Hashtbl.t;
      (* backup copies pushed by the table's manager ("duplicated on several
         nodes for fault tolerance", paper §3.1); promoted to [stored] when
         ownership of the hashed ring name passes to this node *)
  mutable anchor : int;
      (* re-entry point (bootstrap) for recovering from a marooned global
         self-ring; lower layers recover through ring_refresh instead *)
  mutable stabilize_rounds : int;
}

type t = {
  cfg : config;
  eng : Engine.t;
  lat : Topology.Latency.t;
  landmarks : Binning.Landmark.t;
  chain : Binning.Scheme.thresholds array;
  nodes : (int, pnode) Hashtbl.t;
  stabs : Simnet.Stability.t array; (* stabs.(layer-1) = that layer's detector *)
  mutable scale : float; (* current maintenance-interval multiplier, >= 1 *)
  mutable probing : bool; (* fingerprint probe loop started *)
  mutable maint_stabilize : int;
  mutable maint_notify : int;
  mutable maint_fix_fingers : int;
  mutable maint_check_pred : int;
  mutable maint_ring : int;
  ts_collector : Obs.Timeseries.t;
  ts_members : Obs.Timeseries.series;
  ts_joins : Obs.Timeseries.series;
  ts_join_done : Obs.Timeseries.series;
  ts_fails : Obs.Timeseries.series;
  ts_rings : Obs.Timeseries.series array; (* ts_rings.(k-2) = layer-k ring count *)
  ts_maint : Obs.Timeseries.series;
  ts_scale : Obs.Timeseries.series;
  ts_stable : Obs.Timeseries.series;
}

let create ?(ts = Obs.Timeseries.disabled) cfg eng ~lat ~landmarks =
  if cfg.depth < 2 then invalid_arg "Hprotocol.create: depth must be >= 2";
  if cfg.stability_k < 1 then invalid_arg "Hprotocol.create: stability_k must be >= 1";
  if cfg.backoff_max < 1.0 then invalid_arg "Hprotocol.create: backoff_max must be >= 1";
  {
    cfg;
    eng;
    lat;
    landmarks;
    chain = Binning.Scheme.refinement_chain ~depth:cfg.depth;
    nodes = Hashtbl.create 64;
    stabs = Array.init cfg.depth (fun _ -> Simnet.Stability.create ~k:cfg.stability_k ());
    scale = 1.0;
    probing = false;
    maint_stabilize = 0;
    maint_notify = 0;
    maint_fix_fingers = 0;
    maint_check_pred = 0;
    maint_ring = 0;
    ts_collector = ts;
    ts_members = Obs.Timeseries.gauge ts "hieras.members";
    ts_joins = Obs.Timeseries.counter ts "hieras.joins";
    ts_join_done = Obs.Timeseries.counter ts "hieras.joins_completed";
    ts_fails = Obs.Timeseries.counter ts "hieras.fails";
    ts_rings =
      Array.init (cfg.depth - 1) (fun k ->
          Obs.Timeseries.gauge ts (Printf.sprintf "hieras.layer%d.rings" (k + 2)));
    ts_maint = Obs.Timeseries.counter ts "hieras.maint.ops";
    ts_scale = Obs.Timeseries.gauge ts "hieras.maint.scale";
    ts_stable = Obs.Timeseries.gauge ts "hieras.stable";
  }

let engine t = t.eng
let config t = t.cfg

let stability t ~layer =
  if layer < 1 || layer > t.cfg.depth then invalid_arg "Hprotocol.stability: layer out of range";
  t.stabs.(layer - 1)

let converged_layer t ~layer = Simnet.Stability.is_stable (stability t ~layer)
let converged t = Array.for_all Simnet.Stability.is_stable t.stabs
let interval_scale t = t.scale

let maintenance_ops t =
  t.maint_stabilize + t.maint_notify + t.maint_fix_fingers + t.maint_check_pred + t.maint_ring

(* one maintenance RPC initiated (stabilize ask, notify, finger fix, pred
   check, ring-table duty) — the unit the bandwidth-overhead series counts *)
let maint t field =
  (match field with
  | `Stabilize -> t.maint_stabilize <- t.maint_stabilize + 1
  | `Notify -> t.maint_notify <- t.maint_notify + 1
  | `Fix -> t.maint_fix_fingers <- t.maint_fix_fingers + 1
  | `Check -> t.maint_check_pred <- t.maint_check_pred + 1
  | `Ring -> t.maint_ring <- t.maint_ring + 1);
  Obs.Timeseries.add t.ts_maint ~at:(Engine.now t.eng) 1.0
let self_peer pn = { paddr = pn.addr; pid = pn.id }
let get t addr = Hashtbl.find t.nodes addr
let is_member t addr = Hashtbl.mem t.nodes addr && Engine.is_alive t.eng addr
let node_id t addr = (get t addr).id

let check_layer t layer =
  if layer < 1 || layer > t.cfg.depth then invalid_arg "Hprotocol: layer out of range"

let order_of t addr ~layer =
  check_layer t layer;
  if layer = 1 then invalid_arg "Hprotocol.order_of: the global ring has no order";
  (get t addr).orders.(layer - 2)

let layer_state pn ~layer = pn.layers.(layer - 1)

(* Membership + ring-count gauges, stamped with sim time. Walks the node
   table once per lifecycle event (join/spawn/fail) — rare next to message
   traffic, and a no-op when the collector is disabled. *)
let emit_churn t =
  if Obs.Timeseries.enabled t.ts_collector then begin
    let at = Engine.now t.eng in
    let live = ref 0 in
    let rings = Array.init (t.cfg.depth - 1) (fun _ -> Hashtbl.create 16) in
    Hashtbl.iter
      (fun addr pn ->
        if Engine.is_alive t.eng addr then begin
          incr live;
          Array.iteri (fun k order -> Hashtbl.replace rings.(k) order ()) pn.orders
        end)
      t.nodes;
    Obs.Timeseries.set t.ts_members ~at (float_of_int !live);
    Array.iteri
      (fun k s -> Obs.Timeseries.set s ~at (float_of_int (Hashtbl.length rings.(k))))
      t.ts_rings
  end

let successor_addr t addr ~layer =
  check_layer t layer;
  match (layer_state (get t addr) ~layer).succs with [] -> None | s :: _ -> Some s.paddr

let predecessor_addr t addr ~layer =
  check_layer t layer;
  Option.map (fun p -> p.paddr) (layer_state (get t addr) ~layer).pred

let successor_list_addrs t addr ~layer =
  check_layer t layer;
  List.map (fun p -> p.paddr) (layer_state (get t addr) ~layer).succs

let finger_addrs t addr ~layer =
  check_layer t layer;
  Array.map (Option.map (fun p -> p.paddr)) (layer_state (get t addr) ~layer).fingers

(* Deterministic digest of one layer's routing state across the live
   membership, visited in sorted address order (see Chord.Protocol). *)
let fingerprint t ~layer =
  let addrs =
    Hashtbl.fold (fun a _ acc -> a :: acc) t.nodes [] |> List.sort Stdlib.compare
  in
  let open Simnet.Stability in
  List.fold_left
    (fun acc addr ->
      if not (Engine.is_alive t.eng addr) then acc
      else begin
        let pn = Hashtbl.find t.nodes addr in
        let ls = layer_state pn ~layer in
        let acc = fp_add acc addr in
        let acc = fp_add acc (match ls.pred with None -> -1 | Some p -> p.paddr) in
        let acc = List.fold_left (fun acc p -> fp_add acc p.paddr) acc ls.succs in
        let acc = fp_add acc (-2) in
        Array.fold_left
          (fun acc f -> fp_add acc (match f with None -> -1 | Some p -> p.paddr))
          acc ls.fingers
      end)
    fp_init addrs

(* Fixed-cadence convergence probe (a god-event loop, message-free): one
   detector per layer; the adaptive backoff engages only when EVERY layer
   is stable and snaps back the moment any of them drifts. The probe
   cadence is never scaled, so detection latency stays bounded. *)
let rec probe t =
  let at = Engine.now t.eng in
  for layer = 1 to t.cfg.depth do
    Simnet.Stability.observe t.stabs.(layer - 1) ~at ~fingerprint:(fingerprint t ~layer)
  done;
  let all_stable = Array.for_all Simnet.Stability.is_stable t.stabs in
  if t.cfg.adaptive then
    t.scale <- (if all_stable then Float.min t.cfg.backoff_max (t.scale *. 2.0) else 1.0);
  Obs.Timeseries.set t.ts_scale ~at t.scale;
  Obs.Timeseries.set t.ts_stable ~at (if all_stable then 1.0 else 0.0);
  Engine.schedule t.eng ~delay:t.cfg.stabilize_every (fun () -> probe t)

let ensure_probe t =
  if not t.probing then begin
    t.probing <- true;
    Engine.schedule t.eng ~delay:t.cfg.stabilize_every (fun () -> probe t)
  end

(* a lifecycle event is about to change routing state on every layer:
   restart the convergence clocks and revert any backed-off interval *)
let perturb t =
  let at = Engine.now t.eng in
  Array.iter (fun s -> Simnet.Stability.perturb s ~at) t.stabs;
  t.scale <- 1.0

let ring_from t start ~layer =
  let guard = 2 * (Hashtbl.length t.nodes + 1) in
  let rec go addr acc n =
    if n > guard then List.rev acc
    else
      match successor_addr t addr ~layer with
      | None -> List.rev acc
      | Some s when s = start -> List.rev acc
      | Some s -> go s (s :: acc) (n + 1)
  in
  go start [ start ] 0

let stored_ring_tables t addr =
  Hashtbl.fold (fun _ rt acc -> rt :: acc) (get t addr).stored []

let replica_ring_tables t addr =
  Hashtbl.fold (fun _ rt acc -> rt :: acc) (get t addr).replicas []

let find_ring_table t rname =
  let key = Ring_name.to_string rname in
  Hashtbl.fold
    (fun addr pn acc ->
      match acc with
      | Some _ -> acc
      | None ->
          if Engine.is_alive t.eng addr then
            Option.map (fun rt -> (addr, rt)) (Hashtbl.find_opt pn.stored key)
          else None)
    t.nodes None

let live_members t =
  Hashtbl.fold (fun a _ acc -> if Engine.is_alive t.eng a then a :: acc else acc) t.nodes []
  |> List.sort Stdlib.compare

(* ---- generic request/response with timeout --------------------------- *)

(* [kind] labels the request span for the netspan tracer; the response leg
   is always a [Reply] (and a causal child of the request). *)
let ask t ~kind ~src ~dst ~service ~ok ~timeout =
  let settled = ref false in
  Engine.send t.eng ~kind ~src ~dst (fun () ->
      match Hashtbl.find_opt t.nodes dst with
      | None -> ()
      | Some pn ->
          let response = service pn in
          Engine.send t.eng ~kind:Netspan.Reply ~src:dst ~dst:src (fun () ->
              if not !settled then begin
                settled := true;
                ok response
              end));
  Engine.timer t.eng ~node:src ~delay:t.cfg.rpc_timeout (fun () ->
      if not !settled then begin
        settled := true;
        timeout ()
      end)

let expunge_layer ls bad =
  ls.succs <- List.filter (fun p -> p.paddr <> bad) ls.succs;
  (match ls.pred with Some p when p.paddr = bad -> ls.pred <- None | _ -> ());
  Array.iteri
    (fun i f -> match f with Some p when p.paddr = bad -> ls.fingers.(i) <- None | _ -> ())
    ls.fingers

let current_successor pn ls = match ls.succs with [] -> self_peer pn | s :: _ -> s

let closest_preceding pn ls ~key =
  let best = ref None in
  let consider p =
    if p.paddr <> pn.addr && Id.in_oo p.pid ~lo:pn.id ~hi:key then
      match !best with
      | Some b when Id.in_oo p.pid ~lo:b.pid ~hi:key -> best := Some p
      | Some _ -> ()
      | None -> best := Some p
  in
  Array.iter (function Some p -> consider p | None -> ()) ls.fingers;
  List.iter consider ls.succs;
  match !best with Some p -> p | None -> current_successor pn ls

(* ---- per-layer find_successor (recursive forwarding) ------------------ *)

(* [kind] is the span kind of the next message this cascade sends: the
   initiating site's RPC kind on the first send (so the tree's root always
   carries it), [Forward] on recursive hops, [Reply] on the response. *)
let rec handle_find_successor t pn ~kind ~layer ~key ~hops ~reply_to ~reply =
  let ls = layer_state pn ~layer in
  let succ = current_successor pn ls in
  if Id.in_oc key ~lo:pn.id ~hi:succ.pid || succ.paddr = pn.addr then
    Engine.send t.eng
      ~kind:(match kind with Netspan.Forward -> Netspan.Reply | k -> k)
      ~src:pn.addr ~dst:reply_to
      (fun () -> reply succ (hops + 1))
  else begin
    let next = closest_preceding pn ls ~key in
    Engine.send t.eng ~kind ~src:pn.addr ~dst:next.paddr (fun () ->
        match Hashtbl.find_opt t.nodes next.paddr with
        | None -> ()
        | Some pn' ->
            handle_find_successor t pn' ~kind:Netspan.Forward ~layer ~key ~hops:(hops + 1)
              ~reply_to ~reply)
  end

let find_successor t ~kind ~src ~layer ~key ~retries ~ok ~failed =
  let rec attempt n =
    let settled = ref false in
    (match Hashtbl.find_opt t.nodes src with
    | None -> ()
    | Some pn ->
        handle_find_successor t pn ~kind ~layer ~key ~hops:(-1) ~reply_to:src ~reply:(fun p h ->
            if not !settled then begin
              settled := true;
              ok p h
            end));
    Engine.timer t.eng ~node:src ~delay:t.cfg.rpc_timeout (fun () ->
        if not !settled then begin
          settled := true;
          if n > 0 then attempt (n - 1) else failed ()
        end)
  in
  attempt retries

(* ---- per-layer maintenance -------------------------------------------- *)

(* see Chord.Protocol: periodic cross-check against the anchor's view of
   the global ring merges parallel rings that stabilize alone cannot *)
let anchor_crosscheck_period = 8

(* Successor-list hygiene, per layer: drop ourselves, dedup, cap. Entries
   that are already gone are dropped at adoption (a quick liveness ping in
   a real deployment): a dead entry adopted from a neighbour's stale list
   poisons closest_preceding from the tail, where no stabilize timeout
   ever examines it — and in a small lower-layer ring that can wedge
   routing permanently (see Chord.Protocol.truncate_succs). *)
let truncate_succs t pn l =
  let seen = Hashtbl.create 8 in
  let deduped =
    List.filter
      (fun p ->
        if p.paddr = pn.addr || Hashtbl.mem seen p.paddr then false
        else if not (Engine.is_alive t.eng p.paddr) then false
        else begin
          Hashtbl.replace seen p.paddr ();
          true
        end)
      l
  in
  List.filteri (fun i _ -> i < t.cfg.succ_list_len) deduped

let rec stabilize t pn ~layer =
  let ls = layer_state pn ~layer in
  let succ = current_successor pn ls in
  if succ.paddr = pn.addr then begin
    (match ls.pred with
    | Some p when p.paddr <> pn.addr -> ls.succs <- [ p ]
    | _ ->
        (* global-layer self-ring with no predecessor: re-join via anchor *)
        if layer = 1 && pn.anchor <> pn.addr && Engine.is_alive t.eng pn.anchor then begin
          maint t `Stabilize;
          Engine.send t.eng ~kind:Netspan.Stabilize ~src:pn.addr ~dst:pn.anchor (fun () ->
              match Hashtbl.find_opt t.nodes pn.anchor with
              | None -> ()
              | Some apn ->
                  handle_find_successor t apn ~kind:Netspan.Forward ~layer:1 ~key:pn.id ~hops:0
                    ~reply_to:pn.addr ~reply:(fun p _ ->
                      let gls = layer_state pn ~layer:1 in
                      if (current_successor pn gls).paddr = pn.addr && p.paddr <> pn.addr then
                        gls.succs <- [ p ]))
        end);
    schedule_stabilize t pn ~layer
  end
  else begin
    maint t `Stabilize;
    ask t ~kind:Netspan.Stabilize ~src:pn.addr ~dst:succ.paddr
      ~service:(fun spn ->
        let sls = layer_state spn ~layer in
        (sls.pred, self_peer spn :: sls.succs))
      ~ok:(fun (spred, slist) ->
        ls.succ_suspect <- 0;
        (match spred with
        | Some x when x.paddr <> pn.addr && Id.in_oo x.pid ~lo:pn.id ~hi:succ.pid ->
            ls.succs <- truncate_succs t pn (x :: slist)
        | _ -> ls.succs <- truncate_succs t pn slist);
        if layer = 1 then begin
          pn.stabilize_rounds <- pn.stabilize_rounds + 1;
          if
            pn.stabilize_rounds mod anchor_crosscheck_period = 0
            && pn.anchor <> pn.addr
            && Engine.is_alive t.eng pn.anchor
          then begin
            maint t `Stabilize;
            Engine.send t.eng ~kind:Netspan.Stabilize ~src:pn.addr ~dst:pn.anchor (fun () ->
                match Hashtbl.find_opt t.nodes pn.anchor with
                | None -> ()
                | Some apn ->
                    handle_find_successor t apn ~kind:Netspan.Forward ~layer:1 ~key:pn.id
                      ~hops:0 ~reply_to:pn.addr ~reply:(fun p _ ->
                        let gls = layer_state pn ~layer:1 in
                        let cur = current_successor pn gls in
                        if
                          p.paddr <> pn.addr
                          && (cur.paddr = pn.addr || Id.in_oo p.pid ~lo:pn.id ~hi:cur.pid)
                        then gls.succs <- truncate_succs t pn (p :: gls.succs)))
          end
        end;
        let new_succ = current_successor pn ls in
        maint t `Notify;
        Engine.send t.eng ~kind:Netspan.Notify ~src:pn.addr ~dst:new_succ.paddr (fun () ->
            match Hashtbl.find_opt t.nodes new_succ.paddr with
            | None -> ()
            | Some spn -> (
                let sls = layer_state spn ~layer in
                let candidate = self_peer pn in
                match sls.pred with
                | None -> sls.pred <- Some candidate
                | Some p when Id.in_oo candidate.pid ~lo:p.pid ~hi:spn.id ->
                    sls.pred <- Some candidate
                | Some _ -> ()));
        schedule_stabilize t pn ~layer)
      ~timeout:(fun () ->
        ls.succ_suspect <- ls.succ_suspect + 1;
        if ls.succ_suspect >= 2 && (current_successor pn ls).paddr = succ.paddr then begin
          ls.succ_suspect <- 0;
          expunge_layer ls succ.paddr;
          if ls.succs = [] then ls.succs <- [ self_peer pn ]
        end;
        schedule_stabilize t pn ~layer)
  end

and schedule_stabilize t pn ~layer =
  Engine.timer t.eng ~node:pn.addr
    ~delay:(t.cfg.stabilize_every *. t.scale)
    (fun () -> stabilize t pn ~layer)

let rec fix_fingers t pn ~layer =
  let ls = layer_state pn ~layer in
  let bits = Id.bits t.cfg.space in
  for _ = 1 to min t.cfg.fingers_per_round bits do
    let i = ls.next_finger in
    ls.next_finger <- (ls.next_finger + 1) mod bits;
    let start = Id.add_pow2 t.cfg.space pn.id i in
    maint t `Fix;
    find_successor t ~kind:Netspan.Fix_fingers ~src:pn.addr ~layer ~key:start ~retries:0
      ~ok:(fun p _ -> ls.fingers.(i) <- Some p)
      ~failed:(fun () ->
        (* unresolvable finger: clear it rather than keep a possibly-dead
           entry steering closest_preceding into a black hole — with the
           slot empty, routing falls back to lower fingers and the
           successor list until a later round re-resolves it *)
        ls.fingers.(i) <- None)
  done;
  Engine.timer t.eng ~node:pn.addr
    ~delay:(t.cfg.fix_fingers_every *. t.scale)
    (fun () -> fix_fingers t pn ~layer)

let rec check_predecessor t pn ~layer =
  let ls = layer_state pn ~layer in
  (match ls.pred with
  | None -> ()
  | Some p ->
      if p.paddr <> pn.addr then begin
        maint t `Check;
        ask t ~kind:Netspan.Check_pred ~src:pn.addr ~dst:p.paddr
          ~service:(fun _ -> ())
          ~ok:(fun () -> ())
          ~timeout:(fun () ->
            match ls.pred with
            | Some q when q.paddr = p.paddr -> ls.pred <- None
            | _ -> ())
      end);
  Engine.timer t.eng ~node:pn.addr
    ~delay:(t.cfg.check_pred_every *. t.scale)
    (fun () -> check_predecessor t pn ~layer)

(* ---- ring-table duties -------------------------------------------------- *)

let ring_name_of _t pn ~layer = Ring_name.make ~layer ~order:pn.orders.(layer - 2)

let store_ring_table _t pn rt =
  Hashtbl.replace pn.stored (Ring_name.to_string (Ring_table.name rt)) rt

(* lookup in [stored], falling back to promoting a replica: get_ring_table
   requests are routed to the current top-layer owner of the ring id, so
   being asked while holding only a replica means the old manager is gone
   and this node inherited the key space *)
let stored_table pn key =
  match Hashtbl.find_opt pn.stored key with
  | Some rt -> Some rt
  | None -> (
      match Hashtbl.find_opt pn.replicas key with
      | Some replica ->
          Hashtbl.remove pn.replicas key;
          Hashtbl.replace pn.stored key replica;
          Some replica
      | None -> None)


(* The manager checks liveness of recorded nodes, refills from a survivor's
   ring successor list, and migrates tables whose top-layer owner changed. *)
let rec ring_table_duty t pn =
  let tables = Hashtbl.fold (fun k v acc -> (k, v) :: acc) pn.stored [] in
  List.iter
    (fun (key, rt) ->
      (* liveness of recorded entries *)
      List.iter
        (fun e ->
          if e.Ring_table.node <> pn.addr then begin
            maint t `Ring;
            ask t ~kind:Netspan.Ring ~src:pn.addr ~dst:e.Ring_table.node
              ~service:(fun _ -> ())
              ~ok:(fun () -> ())
              ~timeout:(fun () ->
                ignore (Ring_table.remove rt e.Ring_table.node);
                (* refill: ask a survivor for its ring successors *)
                match Ring_table.any_member rt with
                | None -> ()
                | Some survivor ->
                    let layer = Ring_name.layer (Ring_table.name rt) in
                    maint t `Ring;
                    ask t ~kind:Netspan.Ring ~src:pn.addr ~dst:survivor.Ring_table.node
                      ~service:(fun spn ->
                        let sls = layer_state spn ~layer in
                        self_peer spn :: sls.succs)
                      ~ok:(fun members ->
                        List.iter
                          (fun p ->
                            ignore
                              (Ring_table.register rt
                                 { Ring_table.node = p.paddr; id = p.pid }))
                          members)
                      ~timeout:(fun () -> ()))
          end)
        (Ring_table.entries rt);
      (* replication: push a snapshot to the global successor so the table
         survives this manager's silent failure *)
      (let gls = layer_state pn ~layer:1 in
       let succ = current_successor pn gls in
       if succ.paddr <> pn.addr then begin
         let snapshot = Ring_table.copy rt in
         maint t `Ring;
         Engine.send t.eng ~kind:Netspan.Ring ~src:pn.addr ~dst:succ.paddr (fun () ->
             match Hashtbl.find_opt t.nodes succ.paddr with
             | None -> ()
             | Some spn ->
                 if not (Hashtbl.mem spn.stored key) then
                   Hashtbl.replace spn.replicas key snapshot)
       end);
      (* migration: is this node still the rightful manager? *)
      let rid = Ring_table.ring_id rt in
      maint t `Ring;
      find_successor t ~kind:Netspan.Ring ~src:pn.addr ~layer:1 ~key:rid ~retries:0
        ~ok:(fun owner _ ->
          if owner.paddr <> pn.addr then begin
            Engine.send t.eng ~kind:Netspan.Ring ~src:pn.addr ~dst:owner.paddr (fun () ->
                match Hashtbl.find_opt t.nodes owner.paddr with
                | None -> ()
                | Some opn ->
                    let merged =
                      match Hashtbl.find_opt opn.stored key with
                      | None -> rt
                      | Some existing ->
                          List.iter
                            (fun e -> ignore (Ring_table.register existing e))
                            (Ring_table.entries rt);
                          existing
                    in
                    Hashtbl.replace opn.stored key merged);
            Hashtbl.remove pn.stored key
          end)
        ~failed:(fun () -> ()))
    tables;
  Engine.timer t.eng ~node:pn.addr
    ~delay:(t.cfg.ring_check_every *. t.scale)
    (fun () -> ring_table_duty t pn)

(* Ring unification: concurrent joiners may read a stale ring table and boot
   a private one-node ring. Periodically every node re-reads its rings'
   tables, adopts any recorded member that lies between itself and its
   current ring successor (stabilize then merges the loops), and re-registers
   itself so the table tracks the live extremes. The paper assumes joins are
   sequential and tables current; this duty removes that assumption. *)
let rec ring_refresh t pn =
  for layer = 2 to t.cfg.depth do
    let rname = ring_name_of t pn ~layer in
    let key = Ring_name.to_string rname in
    let rid = Ring_name.ring_id t.cfg.space rname in
    maint t `Ring;
    find_successor t ~kind:Netspan.Ring ~src:pn.addr ~layer:1 ~key:rid ~retries:0
      ~ok:(fun manager _ ->
        maint t `Ring;
        ask t ~kind:Netspan.Ring ~src:pn.addr ~dst:manager.paddr
          ~service:(fun mpn ->
            match stored_table mpn key with
            | Some rt ->
                let changed =
                  Ring_table.register rt { Ring_table.node = pn.addr; id = pn.id }
                in
                ignore changed;
                Ring_table.entries rt
            | None ->
                let rt =
                  Ring_table.of_members t.cfg.space rname
                    [ { Ring_table.node = pn.addr; id = pn.id } ]
                in
                store_ring_table t mpn rt;
                [])
          ~ok:(fun entries ->
            let ls = layer_state pn ~layer in
            List.iter
              (fun e ->
                (* skip recorded members that are gone: a stale table entry
                   re-adopted here would seize the successor slot faster
                   than stabilize can expunge it, wedging the ring (the
                   anchor re-join applies the same liveness shortcut) *)
                if e.Ring_table.node <> pn.addr && Engine.is_alive t.eng e.Ring_table.node
                then begin
                  let succ = current_successor pn ls in
                  if
                    succ.paddr = pn.addr
                    || Id.in_oo e.Ring_table.id ~lo:pn.id ~hi:succ.pid
                  then
                    ls.succs <-
                      truncate_succs t pn
                        ({ paddr = e.Ring_table.node; pid = e.Ring_table.id } :: ls.succs)
                end)
              entries)
          ~timeout:(fun () -> ()))
      ~failed:(fun () -> ())
  done;
  Engine.timer t.eng ~node:pn.addr
    ~delay:(t.cfg.ring_check_every *. t.scale)
    (fun () -> ring_refresh t pn)

(* ---- lifecycle ---------------------------------------------------------- *)

let start_maintenance t pn =
  for layer = 1 to t.cfg.depth do
    schedule_stabilize t pn ~layer;
    Engine.timer t.eng ~node:pn.addr ~delay:t.cfg.fix_fingers_every (fun () ->
        fix_fingers t pn ~layer);
    Engine.timer t.eng ~node:pn.addr ~delay:t.cfg.check_pred_every (fun () ->
        check_predecessor t pn ~layer)
  done;
  Engine.timer t.eng ~node:pn.addr ~delay:t.cfg.ring_check_every (fun () -> ring_table_duty t pn);
  Engine.timer t.eng ~node:pn.addr ~delay:(1.5 *. t.cfg.ring_check_every) (fun () ->
      ring_refresh t pn)

let measure_orders t ~addr =
  let dists = Binning.Landmark.measure t.lat t.landmarks ~host:addr in
  Array.map (fun thr -> Binning.Scheme.order thr dists) t.chain

let fresh_node t ~addr ~id =
  if Hashtbl.mem t.nodes addr then invalid_arg "Hprotocol: address already in use";
  let bits = Id.bits t.cfg.space in
  let pn =
    {
      addr;
      id;
      orders = measure_orders t ~addr;
      layers =
        Array.init t.cfg.depth (fun _ ->
            {
              pred = None;
              succs = [];
              fingers = Array.make bits None;
              next_finger = 0;
              succ_suspect = 0;
            });
      stored = Hashtbl.create 4;
      replicas = Hashtbl.create 4;
      anchor = addr;
      stabilize_rounds = 0;
    }
  in
  Hashtbl.replace t.nodes addr pn;
  pn

let spawn t ~addr ~id =
  let pn = fresh_node t ~addr ~id in
  Array.iter (fun ls -> ls.succs <- [ self_peer pn ]) pn.layers;
  (* first node stores the ring tables of all of its own rings *)
  for layer = 2 to t.cfg.depth do
    let rname = ring_name_of t pn ~layer in
    let rt =
      Ring_table.of_members t.cfg.space rname [ { Ring_table.node = addr; id } ]
    in
    store_ring_table t pn rt
  done;
  start_maintenance t pn;
  perturb t;
  ensure_probe t;
  emit_churn t

(* Join one lower layer (paper §3.3): locate the ring table through the top
   layer, ask a recorded member for our ring-level successor, register
   ourselves in the table if we displace an extreme. *)
let join_lower_layer t pn ~layer ~and_then =
  let rname = ring_name_of t pn ~layer in
  let key = Ring_name.to_string rname in
  let rid = Ring_name.ring_id t.cfg.space rname in
  let ls = layer_state pn ~layer in
  let register_with manager_addr =
    Engine.send t.eng ~kind:Netspan.Join ~src:pn.addr ~dst:manager_addr (fun () ->
        match Hashtbl.find_opt t.nodes manager_addr with
        | None -> ()
        | Some mpn -> (
            match stored_table mpn key with
            | Some rt -> ignore (Ring_table.register rt { Ring_table.node = pn.addr; id = pn.id })
            | None ->
                let rt =
                  Ring_table.of_members t.cfg.space rname
                    [ { Ring_table.node = pn.addr; id = pn.id } ]
                in
                store_ring_table t mpn rt))
  in
  (* route to the manager of this ring's table on the top layer *)
  find_successor t ~kind:Netspan.Join ~src:pn.addr ~layer:1 ~key:rid
    ~retries:t.cfg.lookup_retries
    ~ok:(fun manager _ ->
      ask t ~kind:Netspan.Join ~src:pn.addr ~dst:manager.paddr
        ~service:(fun mpn -> Option.map Ring_table.entries (stored_table mpn key))
        ~ok:(fun entries ->
          let members =
            match entries with
            | Some (_ :: _ as es) ->
                List.filter (fun e -> e.Ring_table.node <> pn.addr) es
            | _ -> []
          in
          match members with
          | [] ->
              (* first member of this ring: one-node ring, create the table *)
              ls.succs <- [ self_peer pn ];
              register_with manager.paddr;
              and_then ()
          | first :: rest ->
              (* ask a recorded member for our ring-level successor *)
              let rec try_members m ms =
                let settled = ref false in
                Engine.send t.eng ~kind:Netspan.Join ~src:pn.addr ~dst:m.Ring_table.node
                  (fun () ->
                    match Hashtbl.find_opt t.nodes m.Ring_table.node with
                    | None -> ()
                    | Some ppn ->
                        handle_find_successor t ppn ~kind:Netspan.Forward ~layer ~key:pn.id
                          ~hops:0 ~reply_to:pn.addr ~reply:(fun succ _ ->
                            if not !settled then begin
                              settled := true;
                              ls.succs <- [ succ ];
                              if Ring_table.should_register
                                   (Ring_table.of_members t.cfg.space rname
                                      (match entries with Some es -> es | None -> []))
                                   pn.id
                              then register_with manager.paddr;
                              and_then ()
                            end));
                Engine.timer t.eng ~node:pn.addr ~delay:t.cfg.rpc_timeout (fun () ->
                    if not !settled then begin
                      settled := true;
                      match ms with
                      | next :: more -> try_members next more
                      | [] ->
                          (* everyone recorded is dead: start a fresh ring *)
                          ls.succs <- [ self_peer pn ];
                          register_with manager.paddr;
                          and_then ()
                    end)
              in
              try_members first rest)
        ~timeout:(fun () ->
          ls.succs <- [ self_peer pn ];
          and_then ()))
    ~failed:(fun () ->
      ls.succs <- [ self_peer pn ];
      and_then ())

let join t ~addr ~id ~bootstrap =
  let pn = fresh_node t ~addr ~id in
  pn.anchor <- bootstrap;
  perturb t;
  ensure_probe t;
  Obs.Timeseries.add t.ts_joins ~at:(Engine.now t.eng) 1.0;
  emit_churn t;
  (* step 1-2: fetch the landmark table from the bootstrap and ping the
     landmarks; we charge one RTT to the farthest landmark before the
     overlay join proceeds. The fetch retries forever — losing it must not
     strand the node before it even enters the overlay. *)
  let ping_delay =
    Array.fold_left
      (fun acc r -> Float.max acc (2.0 *. Topology.Latency.host_to_router t.lat addr r))
      0.0
      (Binning.Landmark.routers t.landmarks)
  in
  let rec fetch_landmark_table () =
    ask t ~kind:Netspan.Join ~src:addr ~dst:bootstrap
      ~service:(fun _ -> ())
      ~ok:(fun () ->
      Engine.timer t.eng ~node:addr ~delay:ping_delay (fun () ->
          (* step 3: top-layer Chord join through the bootstrap *)
          let rec attempt n =
            let settled = ref false in
            Engine.send t.eng ~kind:Netspan.Join ~src:addr ~dst:bootstrap (fun () ->
                match Hashtbl.find_opt t.nodes bootstrap with
                | None -> ()
                | Some bpn ->
                    handle_find_successor t bpn ~kind:Netspan.Forward ~layer:1 ~key:id ~hops:0
                      ~reply_to:addr ~reply:(fun p _ ->
                        if not !settled then begin
                          settled := true;
                          (layer_state pn ~layer:1).succs <- [ p ];
                          (* step 4: join each lower layer in turn *)
                          let rec lower layer =
                            if layer > t.cfg.depth then begin
                              start_maintenance t pn;
                              Obs.Timeseries.add t.ts_join_done ~at:(Engine.now t.eng) 1.0;
                              emit_churn t
                            end
                            else
                              join_lower_layer t pn ~layer ~and_then:(fun () ->
                                  lower (layer + 1))
                          in
                          lower 2
                        end));
            Engine.timer t.eng ~node:addr ~delay:t.cfg.rpc_timeout (fun () ->
                if not !settled then begin
                  settled := true;
                  (* never abandon the join: a node that gives up is lost *)
                  let backoff = if n > 0 then 0.0 else 4.0 *. t.cfg.rpc_timeout in
                  Engine.timer t.eng ~node:addr ~delay:backoff (fun () ->
                      attempt (max 0 (n - 1)))
                end)
          in
          attempt t.cfg.lookup_retries))
      ~timeout:(fun () -> fetch_landmark_table ())
  in
  fetch_landmark_table ()

let fail_node t addr =
  if not (Hashtbl.mem t.nodes addr) then invalid_arg "Hprotocol.fail_node: unknown node";
  Engine.kill t.eng addr;
  perturb t;
  Obs.Timeseries.add t.ts_fails ~at:(Engine.now t.eng) 1.0;
  emit_churn t

(* ---- hierarchical lookup ------------------------------------------------ *)

type lookup_outcome = { owner_addr : int; owner_id : Id.t; hops : int; lower_hops : int }

(* Route to the ring-level closest preceding node at [layer], then either
   early-exit through the global successor check or descend to the next
   layer. Runs as a chain of forwarded messages; the final owner replies
   straight to the originator. [kind] follows the handle_find_successor
   convention: the initiation kind until the first send, then [Forward] /
   [Reply]; descending a layer sends nothing, so the kind rides along. *)
let rec hroute t pn ~kind ~layer ~key ~hops ~lower_hops ~reply_to ~reply =
  let reply_kind = match kind with Netspan.Forward -> Netspan.Reply | k -> k in
  if layer >= 2 then begin
    let ls = layer_state pn ~layer in
    let succ = current_successor pn ls in
    if Id.in_oc key ~lo:pn.id ~hi:succ.pid || succ.paddr = pn.addr then begin
      (* ring-level predecessor reached: early exit if our global successor
         owns the key, otherwise climb one layer *)
      let gls = layer_state pn ~layer:1 in
      let gsucc = current_successor pn gls in
      if gsucc.paddr <> pn.addr && Id.in_oc key ~lo:pn.id ~hi:gsucc.pid then
        Engine.send t.eng ~kind:reply_kind ~src:pn.addr ~dst:reply_to (fun () ->
            reply gsucc (hops + 1) lower_hops)
      else hroute t pn ~kind ~layer:(layer - 1) ~key ~hops ~lower_hops ~reply_to ~reply
    end
    else begin
      let next = closest_preceding pn ls ~key in
      Engine.send t.eng ~kind ~src:pn.addr ~dst:next.paddr (fun () ->
          match Hashtbl.find_opt t.nodes next.paddr with
          | None -> ()
          | Some pn' ->
              hroute t pn' ~kind:Netspan.Forward ~layer ~key ~hops:(hops + 1)
                ~lower_hops:(lower_hops + 1) ~reply_to ~reply)
    end
  end
  else begin
    let ls = layer_state pn ~layer:1 in
    let succ = current_successor pn ls in
    if Id.in_oc key ~lo:pn.id ~hi:succ.pid || succ.paddr = pn.addr then
      Engine.send t.eng ~kind:reply_kind ~src:pn.addr ~dst:reply_to (fun () ->
          reply succ (hops + 1) lower_hops)
    else begin
      let next = closest_preceding pn ls ~key in
      Engine.send t.eng ~kind ~src:pn.addr ~dst:next.paddr (fun () ->
          match Hashtbl.find_opt t.nodes next.paddr with
          | None -> ()
          | Some pn' ->
              hroute t pn' ~kind:Netspan.Forward ~layer:1 ~key ~hops:(hops + 1) ~lower_hops
                ~reply_to ~reply)
    end
  end

let lookup t ~origin ~key k =
  let rec attempt budget =
    let settled = ref false in
    (match Hashtbl.find_opt t.nodes origin with
    | None -> ()
    | Some pn ->
        hroute t pn ~kind:Netspan.Lookup ~layer:t.cfg.depth ~key ~hops:(-1) ~lower_hops:0
          ~reply_to:origin
          ~reply:(fun p hops lower_hops ->
            if not !settled then begin
              settled := true;
              k (Some { owner_addr = p.paddr; owner_id = p.pid; hops; lower_hops })
            end));
    Engine.timer t.eng ~node:origin ~delay:t.cfg.rpc_timeout (fun () ->
        if not !settled then begin
          settled := true;
          if budget > 0 then attempt (budget - 1) else k None
        end)
  in
  attempt t.cfg.lookup_retries

let export_metrics ?(prefix = "hieras.protocol") t m =
  let c name v = Obs.Metrics.set_counter (Obs.Metrics.counter m (prefix ^ "." ^ name)) v in
  c "maint.stabilize" t.maint_stabilize;
  c "maint.notify" t.maint_notify;
  c "maint.fix_fingers" t.maint_fix_fingers;
  c "maint.check_pred" t.maint_check_pred;
  c "maint.ring" t.maint_ring;
  c "maint.total" (maintenance_ops t);
  Obs.Metrics.set (Obs.Metrics.gauge m (prefix ^ ".maint.scale")) t.scale;
  Array.iteri
    (fun i s ->
      Simnet.Stability.export_metrics
        ~prefix:(Printf.sprintf "%s.layer%d.stability" prefix (i + 1))
        s m)
    t.stabs
