(** Library root: the historical Chord-specialized HIERAS modules plus the
    substrate-generic functor. [Hieras.Make (R)] layers locality rings over
    any [Routing.S]; [Hnetwork]/[Hlookup] remain the packed, scale-tuned
    Chord instantiation the goldens and the million-node experiments pin. *)

module Cost = Cost
module Hlookup = Hlookup
module Hnetwork = Hnetwork
module Hprotocol = Hprotocol
module Location = Location
module Ring_name = Ring_name
module Ring_table = Ring_table
module Layered = Layered
module Make = Layered.Make
