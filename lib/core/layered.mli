(** HIERAS layering over any {!Routing.S} substrate (DESIGN.md §13).

    [Make (R)] builds locality rings — landmark binning, refinement chains,
    one ring per order per layer, the same structure as {!Hnetwork.build} —
    out of [R]'s subset-ring primitives, and routes with {!Hlookup}'s
    multi-loop composition expressed through [R]'s step functions.
    [Make (Chord.Routable)] reproduces [Hlookup] over [Hnetwork] hop for hop
    and trace-byte for trace-byte; [Make (Can.Routable)] is the paper's
    §3.2 HIERAS-over-CAN. The result satisfies {!Routing.ROUTABLE}, so
    layered overlays enter experiments anywhere flat substrates do. *)

module Make (R : Routing.S) : sig
  type t

  val name : string
  (** [R.layered_name] — the trace algo tag ("hieras" over Chord). *)

  val build :
    base:R.t ->
    lat:Topology.Latency.t ->
    landmarks:Binning.Landmark.t ->
    depth:int ->
    ?measure:(host:int -> float array) ->
    unit ->
    t
  (** Bin the substrate's nodes by landmark distance ([measure] overrides
      the probe, as in [Hnetwork.build]) and build one [R] ring per bin per
      layer. [depth >= 2]. *)

  val base : t -> R.t
  val depth : t -> int
  val size : t -> int
  val host : t -> int -> int

  val order_of_node : t -> layer:int -> int -> string
  val ring_count : t -> layer:int -> int
  val ring_members : t -> layer:int -> int -> int array
  (** Members of the node's layer ring (a fresh copy), ascending by node
      index. *)

  val ring_size_of_node : t -> layer:int -> int -> int

  val owner_of_key : t -> key:Hashid.Id.t -> int
  val live_owner : t -> is_alive:(int -> bool) -> key:Hashid.Id.t -> int option

  val route : ?trace:Obs.Trace.t -> t -> origin:int -> key:Hashid.Id.t -> Routing.result
  (** Descend layers [depth .. 2] (ring walks + the substrate's early-exit
      check), then the flat walk; hops are layer-tagged and the trace algo
      is {!name}. *)

  val route_hops :
    ?into:int array -> t -> origin:int -> key:Hashid.Id.t -> int * int array * int * int
  (** [(hops, hops_per_layer, destination, finished_at_layer)] — the
      analytic walk. [into], when given (length >= depth), is zeroed and
      used as the per-layer accumulator instead of allocating one per call
      (the returned array is [into] itself). *)

  val route_hops_only : t -> origin:int -> key:Hashid.Id.t -> int * int
  (** [(hops, destination)] — the {!Routing.ROUTABLE} analytic form. *)

  val route_resilient :
    ?trace:Obs.Trace.t ->
    ?policy:Routing.policy ->
    t ->
    is_alive:(int -> bool) ->
    origin:int ->
    key:Hashid.Id.t ->
    Routing.attempt
  (** Failure-aware layered routing: resilient ring walks (probing dead
      in-ring candidates, climbing a layer early — [Layer_escape] — when a
      ring has no live route), the early exit checked against liveness,
      then the substrate's flat candidates. Succeeds iff it reaches
      [live_owner]. With everyone alive, hop-for-hop identical to
      {!route}. *)
end
