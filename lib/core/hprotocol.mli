(** Message-level HIERAS protocol on {!Simnet.Engine} (paper §3.3).

    The dynamic counterpart of {!Hnetwork}: every node keeps one Chord-style
    state block (predecessor, successor list, fingers) {e per layer}, and the
    system additionally maintains {!Ring_table}s, stored on the top-layer
    node whose identifier is closest to the hashed ring name.

    A node joins by: fetching the landmark table from its bootstrap peer,
    measuring its distance to every landmark (simulated pings through the
    latency oracle), quantising the vector into one ring name per lower
    layer, joining the top layer with an ordinary Chord join, and then, for
    every lower layer, locating the ring's table through a top-layer lookup,
    asking a recorded member for its ring-level successor, and finally
    registering itself in the table if its identifier displaces one of the
    four extremes — exactly the sequence of §3.3. The first node of a ring
    creates the ring table.

    Maintenance: per-layer stabilize / notify / fix-fingers / check-
    predecessor (as in {!Chord.Protocol}, including failure suspicion and
    anchor-based split-ring healing), plus three ring-table duties on every
    node that stores tables: a liveness check that expunges dead entries and
    refills from a surviving member's successor list; replication of each
    table to the global successor ("duplicated on several nodes for fault
    tolerance", §3.1) with promotion when ownership passes to the replica
    holder; and a migration check that re-routes each table to the currently
    responsible top-layer node as churn moves ownership. A periodic
    ring-refresh duty re-reads each ring's table and merges the private
    rings that concurrent joins with stale tables can create. *)

type config = {
  space : Hashid.Id.space;
  depth : int;  (** >= 2 *)
  stabilize_every : float;
  fix_fingers_every : float;
  check_pred_every : float;
  fingers_per_round : int;
  succ_list_len : int;
  rpc_timeout : float;
  lookup_retries : int;
  ring_check_every : float;  (** ring-table liveness / migration period *)
  stability_k : int;
      (** consecutive unchanged fingerprint probes (per layer) before that
          layer is declared converged (default 3, must be >= 1) *)
  adaptive : bool;
      (** back off maintenance intervals while every layer is converged
          (default false — fixed cadence, byte-compatible with earlier
          versions) *)
  backoff_max : float;
      (** cap on the adaptive interval multiplier (default 8.0, >= 1) *)
}

val default_config : Hashid.Id.space -> depth:int -> config

type t

val create :
  ?ts:Obs.Timeseries.t ->
  config ->
  Simnet.Engine.t ->
  lat:Topology.Latency.t ->
  landmarks:Binning.Landmark.t ->
  t
(** Engine addresses must be topology host indices (the landmark "pings" of
    joining nodes are answered from the latency oracle).

    [ts] (default disabled) receives churn series stamped with sim time:
    gauges [hieras.members] (nodes present and alive, including joins in
    progress) and [hieras.layer<k>.rings] (distinct layer-[k] ring names
    over the live members, [k] in 2..depth), plus counters [hieras.joins]
    (initiated), [hieras.joins_completed] (all layers joined, maintenance
    started) and [hieras.fails]. All are refreshed on every
    join/spawn/fail. Convergence series: counter [hieras.maint.ops]
    (maintenance RPCs initiated, ring duties included), gauges
    [hieras.maint.scale] (current interval multiplier) and [hieras.stable]
    (0/1, set when every layer is converged; sampled at probe cadence).

    Raises [Invalid_argument] if [depth < 2], [stability_k < 1] or
    [backoff_max < 1]. *)

val engine : t -> Simnet.Engine.t
val config : t -> config

val spawn : t -> addr:int -> id:Hashid.Id.t -> unit
(** First node: creates every layer as a one-node ring plus the ring tables
    for its own rings. *)

val join : t -> addr:int -> id:Hashid.Id.t -> bootstrap:int -> unit
val fail_node : t -> int -> unit

type lookup_outcome = {
  owner_addr : int;
  owner_id : Hashid.Id.t;
  hops : int;
  lower_hops : int;  (** hops taken on layers >= 2 *)
}

val lookup :
  t -> origin:int -> key:Hashid.Id.t -> (lookup_outcome option -> unit) -> unit
(** Hierarchical lookup: lower-ring loops first, early-exit via the global
    successor check, global loop last. [None] after all retries time out. *)

(** {2 Introspection (tests and examples)} *)

val is_member : t -> int -> bool
val node_id : t -> int -> Hashid.Id.t
val order_of : t -> int -> layer:int -> string
(** Ring name digits of a node at a paper layer in [2 .. depth]. *)

val successor_addr : t -> int -> layer:int -> int option
(** Successor at a paper layer (1 = global). *)

val predecessor_addr : t -> int -> layer:int -> int option
val successor_list_addrs : t -> int -> layer:int -> int list
val finger_addrs : t -> int -> layer:int -> int option array
val ring_from : t -> int -> layer:int -> int list
(** Follow layer-successor pointers from a node until the cycle closes. *)

val stored_ring_tables : t -> int -> Ring_table.t list
(** Ring tables currently stored on a node. *)

val replica_ring_tables : t -> int -> Ring_table.t list
(** Backup copies this node holds for other managers' tables. *)

val find_ring_table : t -> Ring_name.t -> (int * Ring_table.t) option
(** Scan all live nodes for a ring's table (oracle-side test helper):
    returns the storing node and the table. *)

val live_members : t -> int list

(** {2 Convergence and maintenance cost}

    One {!Simnet.Stability} detector per layer, fed from a fixed-cadence
    message-free probe that fingerprints each layer's routing state
    (live membership, predecessors, successor lists, finger tables). With
    [adaptive] set, all maintenance intervals (including ring duties)
    double while {e every} layer is stable, up to [backoff_max], and snap
    back to the base cadence on any detected change or lifecycle event. *)

val stability : t -> layer:int -> Simnet.Stability.t
(** The layer's detector, [layer] in [1 .. depth] (1 = global). *)

val converged_layer : t -> layer:int -> bool
val converged : t -> bool
(** Every layer stable. *)

val interval_scale : t -> float
(** Current maintenance-interval multiplier (1.0 unless [adaptive]). *)

val maintenance_ops : t -> int
(** Total maintenance RPCs initiated (per-layer stabilize + notify +
    fix-fingers + check-predecessor, plus ring-table duties) — the
    bandwidth-overhead measure. *)

val export_metrics : ?prefix:string -> t -> Obs.Metrics.t -> unit
(** Counters
    [<prefix>.maint.{stabilize,notify,fix_fingers,check_pred,ring,total}],
    gauge [<prefix>.maint.scale], and each layer's detector under
    [<prefix>.layer<k>.stability] (default prefix ["hieras.protocol"]).
    Idempotent. *)
