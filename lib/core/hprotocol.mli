(** Message-level HIERAS protocol on {!Simnet.Engine} (paper §3.3).

    The dynamic counterpart of {!Hnetwork}: every node keeps one Chord-style
    state block (predecessor, successor list, fingers) {e per layer}, and the
    system additionally maintains {!Ring_table}s, stored on the top-layer
    node whose identifier is closest to the hashed ring name.

    A node joins by: fetching the landmark table from its bootstrap peer,
    measuring its distance to every landmark (simulated pings through the
    latency oracle), quantising the vector into one ring name per lower
    layer, joining the top layer with an ordinary Chord join, and then, for
    every lower layer, locating the ring's table through a top-layer lookup,
    asking a recorded member for its ring-level successor, and finally
    registering itself in the table if its identifier displaces one of the
    four extremes — exactly the sequence of §3.3. The first node of a ring
    creates the ring table.

    Maintenance: per-layer stabilize / notify / fix-fingers / check-
    predecessor (as in {!Chord.Protocol}, including failure suspicion and
    anchor-based split-ring healing), plus three ring-table duties on every
    node that stores tables: a liveness check that expunges dead entries and
    refills from a surviving member's successor list; replication of each
    table to the global successor ("duplicated on several nodes for fault
    tolerance", §3.1) with promotion when ownership passes to the replica
    holder; and a migration check that re-routes each table to the currently
    responsible top-layer node as churn moves ownership. A periodic
    ring-refresh duty re-reads each ring's table and merges the private
    rings that concurrent joins with stale tables can create. *)

type config = {
  space : Hashid.Id.space;
  depth : int;  (** >= 2 *)
  stabilize_every : float;
  fix_fingers_every : float;
  check_pred_every : float;
  fingers_per_round : int;
  succ_list_len : int;
  rpc_timeout : float;
  lookup_retries : int;
  ring_check_every : float;  (** ring-table liveness / migration period *)
}

val default_config : Hashid.Id.space -> depth:int -> config

type t

val create :
  ?ts:Obs.Timeseries.t ->
  config ->
  Simnet.Engine.t ->
  lat:Topology.Latency.t ->
  landmarks:Binning.Landmark.t ->
  t
(** Engine addresses must be topology host indices (the landmark "pings" of
    joining nodes are answered from the latency oracle).

    [ts] (default disabled) receives churn series stamped with sim time:
    gauges [hieras.members] (nodes present and alive, including joins in
    progress) and [hieras.layer<k>.rings] (distinct layer-[k] ring names
    over the live members, [k] in 2..depth), plus counters [hieras.joins]
    (initiated), [hieras.joins_completed] (all layers joined, maintenance
    started) and [hieras.fails]. All are refreshed on every
    join/spawn/fail. *)

val engine : t -> Simnet.Engine.t
val config : t -> config

val spawn : t -> addr:int -> id:Hashid.Id.t -> unit
(** First node: creates every layer as a one-node ring plus the ring tables
    for its own rings. *)

val join : t -> addr:int -> id:Hashid.Id.t -> bootstrap:int -> unit
val fail_node : t -> int -> unit

type lookup_outcome = {
  owner_addr : int;
  owner_id : Hashid.Id.t;
  hops : int;
  lower_hops : int;  (** hops taken on layers >= 2 *)
}

val lookup :
  t -> origin:int -> key:Hashid.Id.t -> (lookup_outcome option -> unit) -> unit
(** Hierarchical lookup: lower-ring loops first, early-exit via the global
    successor check, global loop last. [None] after all retries time out. *)

(** {2 Introspection (tests and examples)} *)

val is_member : t -> int -> bool
val node_id : t -> int -> Hashid.Id.t
val order_of : t -> int -> layer:int -> string
(** Ring name digits of a node at a paper layer in [2 .. depth]. *)

val successor_addr : t -> int -> layer:int -> int option
(** Successor at a paper layer (1 = global). *)

val predecessor_addr : t -> int -> layer:int -> int option
val ring_from : t -> int -> layer:int -> int list
(** Follow layer-successor pointers from a node until the cycle closes. *)

val stored_ring_tables : t -> int -> Ring_table.t list
(** Ring tables currently stored on a node. *)

val replica_ring_tables : t -> int -> Ring_table.t list
(** Backup copies this node holds for other managers' tables. *)

val find_ring_table : t -> Ring_name.t -> (int * Ring_table.t) option
(** Scan all live nodes for a ring's table (oracle-side test helper):
    returns the storing node and the table. *)

val live_members : t -> int list
