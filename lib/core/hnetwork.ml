module Id = Hashid.Id

type ring = {
  rname : Ring_name.t;
  members : int array; (* node indices, ascending by identifier *)
  table : Ring_table.t Lazy.t; (* forced on first cost-model/test access *)
}

(* Per-layer packed state (DESIGN.md §12): ring successor/predecessor and the
   node's position in its ring as flat node-indexed arrays, and every
   ring-restricted finger table in one shared arena — node [node]'s segments
   are [f_exp/f_node.(f_off.(node) .. f_off.(node+1) - 1)]. *)
type layer_pack = {
  ring_succ : int array;
  ring_pred : int array;
  f_off : int array; (* n+1 *)
  f_exp : Bytes.t;
  f_node : int array;
}

type t = {
  chord : Chord.Network.t;
  lat : Topology.Latency.t;
  landmarks : Binning.Landmark.t;
  depth : int;
  orders : string array array; (* orders.(k).(node), k = layer - 2 *)
  rings : (string, ring) Hashtbl.t array; (* rings.(k) : order -> ring *)
  ring_of : ring array array; (* ring_of.(k).(node) *)
  packs : layer_pack array; (* packs.(k), k = layer - 2 *)
}

let build ~chord ~lat ~landmarks ~depth ?measure () =
  if depth < 2 then invalid_arg "Hnetwork.build: depth must be >= 2";
  let n = Chord.Network.size chord in
  let space = Chord.Network.space chord in
  let measure =
    match measure with
    | Some f -> f
    | None -> fun ~host -> Binning.Landmark.measure lat landmarks ~host
  in
  let chain = Binning.Scheme.refinement_chain ~depth in
  (* one measurement vector per node, quantised once per layer *)
  let orders =
    let vectors = Array.init n (fun i -> measure ~host:(Chord.Network.host chord i)) in
    Array.init (depth - 1) (fun k ->
        Array.init n (fun i -> Binning.Scheme.order chain.(k) vectors.(i)))
  in
  let rings = Array.init (depth - 1) (fun _ -> Hashtbl.create 64) in
  let member_ids_of : (string, Id.t array * int array) Hashtbl.t = Hashtbl.create 64 in
  let packs =
    Array.init (depth - 1) (fun k ->
        (* group nodes by order; iterating 0..n-1 keeps members id-sorted
           because chord node indices are id-ordered *)
        let groups : (string, int list ref) Hashtbl.t = Hashtbl.create 64 in
        for i = n - 1 downto 0 do
          let o = orders.(k).(i) in
          match Hashtbl.find_opt groups o with
          | Some l -> l := i :: !l
          | None -> Hashtbl.replace groups o (ref [ i ])
        done;
        Hashtbl.reset member_ids_of;
        Hashtbl.iter
          (fun o l ->
            let members = Array.of_list !l in
            let rname = Ring_name.make ~layer:(k + 2) ~order:o in
            let member_ids = Array.map (Chord.Network.id chord) members in
            (* the table keeps only the 2 smallest + 2 largest identifiers;
               members are sorted and distinct, so feeding just the extreme
               entries yields the same table as the full list without the
               quadratic summarisation cost — lazily, off the build path *)
            let table =
              lazy
                (let m = Array.length members in
                 let entry pos = { Ring_table.node = members.(pos); id = member_ids.(pos) } in
                 let extremes =
                   if m <= 4 then List.init m entry
                   else [ entry 0; entry 1; entry (m - 2); entry (m - 1) ]
                 in
                 Ring_table.of_members space rname extremes)
            in
            Hashtbl.replace rings.(k) o { rname; members; table };
            Hashtbl.replace member_ids_of o (member_ids, Array.map Id.prefix_int member_ids))
          groups;
        let ring_succ = Array.make n 0 and ring_pred = Array.make n 0 in
        Hashtbl.iter
          (fun _ r ->
            let m = Array.length r.members in
            Array.iteri
              (fun pos node ->
                ring_succ.(node) <- r.members.((pos + 1) mod m);
                ring_pred.(node) <- r.members.((pos + m - 1) mod m))
              r.members)
          rings.(k);
        (* one pass in node order fills the shared finger arena with
           contiguous per-node slices *)
        let f_off = Array.make (n + 1) 0 in
        let exp_buf = Buffer.create (n * 8) in
        let node_buf = ref (Array.make (max 16 (n * 8)) 0) in
        let seg_count = ref 0 in
        let push e v =
          if !seg_count = Array.length !node_buf then begin
            let grown = Array.make (2 * !seg_count) 0 in
            Array.blit !node_buf 0 grown 0 !seg_count;
            node_buf := grown
          end;
          Buffer.add_char exp_buf (Char.unsafe_chr e);
          !node_buf.(!seg_count) <- v;
          incr seg_count
        in
        for node = 0 to n - 1 do
          f_off.(node) <- !seg_count;
          let o = orders.(k).(node) in
          let r = Hashtbl.find rings.(k) o in
          let member_ids, member_pre = Hashtbl.find member_ids_of o in
          Chord.Finger_table.pack space ~owner_id:(Chord.Network.id chord node) ~member_ids
            ~member_pre ~member_nodes:r.members ~push ()
        done;
        f_off.(n) <- !seg_count;
        {
          ring_succ;
          ring_pred;
          f_off;
          f_exp = Buffer.to_bytes exp_buf;
          f_node = Array.sub !node_buf 0 !seg_count;
        })
  in
  (* every node belongs to exactly one ring per lower layer *)
  let ring_of =
    Array.init (depth - 1) (fun k ->
        Array.init n (fun node -> Hashtbl.find rings.(k) orders.(k).(node)))
  in
  { chord; lat; landmarks; depth; orders; rings; ring_of; packs }

let chord t = t.chord
let latency_oracle t = t.lat
let depth t = t.depth
let landmarks t = t.landmarks
let size t = Chord.Network.size t.chord

let check_layer t layer =
  if layer < 2 || layer > t.depth then invalid_arg "Hnetwork: layer out of range"

let order_of_node t ~layer node =
  check_layer t layer;
  t.orders.(layer - 2).(node)

let ring_name_of_node t ~layer node =
  Ring_name.make ~layer ~order:(order_of_node t ~layer node)

let ring_count t ~layer =
  check_layer t layer;
  Hashtbl.length t.rings.(layer - 2)

let ring_names t ~layer =
  check_layer t layer;
  Hashtbl.fold (fun _ r acc -> r.rname :: acc) t.rings.(layer - 2) []
  |> List.sort Ring_name.compare

let ring_members t ~layer ~order =
  check_layer t layer;
  match Hashtbl.find_opt t.rings.(layer - 2) order with
  | None -> [||]
  | Some r -> Array.copy r.members

let ring_of_node t ~layer node =
  check_layer t layer;
  t.ring_of.(layer - 2).(node)

let ring_size_of_node t ~layer node = Array.length (ring_of_node t ~layer node).members

let ring_successor t ~layer node =
  check_layer t layer;
  t.packs.(layer - 2).ring_succ.(node)

let ring_predecessor t ~layer node =
  check_layer t layer;
  t.packs.(layer - 2).ring_pred.(node)

let finger_table t ~layer node =
  if layer = 1 then Chord.Network.finger_table t.chord node
  else begin
    check_layer t layer;
    let p = t.packs.(layer - 2) in
    let lo = p.f_off.(node) and hi = p.f_off.(node + 1) in
    let exps = Array.init (hi - lo) (fun k -> Char.code (Bytes.get p.f_exp (lo + k))) in
    let nodes = Array.sub p.f_node lo (hi - lo) in
    Chord.Finger_table.of_segments ~owner:node
      ~bits:(Id.bits (Chord.Network.space t.chord))
      ~exps ~nodes
  end

let closest_preceding_finger t ~layer node ~key =
  if layer = 1 then Chord.Network.closest_preceding_finger t.chord node ~key
  else begin
    check_layer t layer;
    let p = t.packs.(layer - 2) in
    (* layer arenas index the global network, so the prefix-accelerated
       chord scan applies unchanged *)
    Chord.Network.closest_preceding_in_arena t.chord ~nodes:p.f_node ~lo:p.f_off.(node)
      ~hi:p.f_off.(node + 1) ~self:node ~key
  end

let preceding_candidates t ~layer node ~key =
  if layer = 1 then Chord.Network.preceding_candidates t.chord node ~key
  else begin
    check_layer t layer;
    let p = t.packs.(layer - 2) in
    Chord.Finger_table.preceding_candidates_arena ~nodes:p.f_node ~lo:p.f_off.(node)
      ~hi:p.f_off.(node + 1)
      ~id_of:(fun j -> Chord.Network.id t.chord j)
      ~self:(Chord.Network.id t.chord node)
      ~key
  end

let ring_table t ~layer ~order =
  check_layer t layer;
  Option.map (fun r -> Lazy.force r.table) (Hashtbl.find_opt t.rings.(layer - 2) order)

let ring_table_manager t rname =
  let rid = Ring_name.ring_id (Chord.Network.space t.chord) rname in
  Chord.Network.successor_of_key t.chord rid

let total_finger_segments t ~layer =
  check_layer t layer;
  Array.length t.packs.(layer - 2).f_node

let bytes_resident t =
  let word = Sys.word_size / 8 in
  let arr len = (len + 1) * word in
  let n = size t in
  let per_layer acc p =
    acc + arr n (* ring_succ *) + arr n (* ring_pred *)
    + arr (n + 1) (* f_off *)
    + (word + ((Bytes.length p.f_exp / word) + 1) * word)
    + arr (Array.length p.f_node)
  in
  let layers = Array.fold_left per_layer 0 t.packs in
  (* order strings: one short string per node per layer *)
  let order_bytes =
    Array.fold_left
      (fun acc os ->
        Array.fold_left (fun acc o -> acc + word + ((String.length o / word) + 1) * word) (acc + arr n) os)
      0 t.orders
  in
  Chord.Network.bytes_resident t.chord + layers + order_bytes + arr n (* ring_of rows *) * Array.length t.ring_of

let nesting_ok t =
  let n = size t in
  let ok = ref true in
  (* two nodes sharing a deep ring must share every shallower ring; checking
     per node that its deep ring members all carry its shallow order *)
  for k = 1 to t.depth - 2 do
    for node = 0 to n - 1 do
      let deep = t.ring_of.(k).(node) in
      let shallow_order = t.orders.(k - 1).(node) in
      Array.iter
        (fun m -> if t.orders.(k - 1).(m) <> shallow_order then ok := false)
        deep.members
    done
  done;
  !ok

let mean_ring_link_latency t ~layer ~samples rng =
  check_layer t layer;
  let n = size t in
  let acc = ref 0.0 and cnt = ref 0 in
  let attempts = ref 0 in
  while !cnt < samples && !attempts < 50 * samples do
    incr attempts;
    let node = Prng.Rng.int rng n in
    let r = ring_of_node t ~layer node in
    let m = Array.length r.members in
    if m >= 2 then begin
      let a = r.members.(Prng.Rng.int rng m) and b = r.members.(Prng.Rng.int rng m) in
      if a <> b then begin
        acc :=
          !acc
          +. Topology.Latency.host_latency t.lat (Chord.Network.host t.chord a)
               (Chord.Network.host t.chord b);
        incr cnt
      end
    end
  done;
  if !cnt = 0 then 0.0 else !acc /. float_of_int !cnt
