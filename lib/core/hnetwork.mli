(** Oracle-built HIERAS networks: the stabilized multi-ring state.

    A HIERAS network wraps a Chord network (the top-layer, "biggest" ring)
    and adds [depth - 1] lower layers. Each node measures its latency to the
    landmark set once; layer [k]'s ring name is that vector quantised with
    the layer's thresholds ({!Binning.Scheme.refinement_chain} — deeper
    layers use strictly finer boundaries, so each deep ring nests inside its
    parent). Per layer, every node keeps a Chord finger table restricted to
    its ring's members, plus ring successor/predecessor; each ring also gets
    the {!Ring_table} the top layer stores for it.

    Layer indexing follows the paper: layer 1 is the global ring, layer
    [depth] the most local one. *)

type t

val build :
  chord:Chord.Network.t ->
  lat:Topology.Latency.t ->
  landmarks:Binning.Landmark.t ->
  depth:int ->
  ?measure:(host:int -> float array) ->
  unit ->
  t
(** [depth >= 2] (a depth-1 HIERAS system {e is} Chord; build that directly).
    [measure] overrides the landmark measurement (e.g. jittered pings);
    default is the exact oracle measurement. The Chord network's hosts must
    be hosts of [lat]. *)

val chord : t -> Chord.Network.t
val latency_oracle : t -> Topology.Latency.t
val depth : t -> int
val landmarks : t -> Binning.Landmark.t
val size : t -> int

val order_of_node : t -> layer:int -> int -> string
(** Ring name (order string) of a node at a layer in [2 .. depth]. *)

val ring_name_of_node : t -> layer:int -> int -> Ring_name.t

val ring_count : t -> layer:int -> int
val ring_names : t -> layer:int -> Ring_name.t list
val ring_members : t -> layer:int -> order:string -> int array
(** Member node indices sorted by identifier; empty if no such ring. *)

val ring_size_of_node : t -> layer:int -> int -> int
val ring_successor : t -> layer:int -> int -> int
val ring_predecessor : t -> layer:int -> int -> int
val finger_table : t -> layer:int -> int -> Chord.Finger_table.t
(** Layer 1 returns the Chord table; layers 2.. return the ring-restricted
    table — a thin view materialized from the layer's packed finger arena
    (DESIGN.md §12). Prefer {!closest_preceding_finger} /
    {!preceding_candidates} on hot paths. *)

val closest_preceding_finger : t -> layer:int -> int -> key:Hashid.Id.t -> int
(** [Chord.Finger_table.closest_preceding] on the node's layer-restricted
    table, read straight off the packed arena; [-1] when no finger makes
    progress. Layer 1 delegates to the Chord network. *)

val preceding_candidates : t -> layer:int -> int -> key:Hashid.Id.t -> int list
(** [Chord.Finger_table.preceding_candidates] off the packed arena
    (farthest-first failover order of the resilient route). *)

val total_finger_segments : t -> layer:int -> int
(** Length of a lower layer's finger arena = sum of distinct ring-restricted
    finger entries over all nodes (layer in [2 .. depth]). *)

val bytes_resident : t -> int
(** Approximate heap footprint of the packed HIERAS state {e including} the
    wrapped Chord network (id strings, per-layer ring arrays, finger arenas,
    order strings) in bytes. *)

val ring_table : t -> layer:int -> order:string -> Ring_table.t option
val ring_table_manager : t -> Ring_name.t -> int
(** The node storing a ring's table: successor of the hashed ring id on the
    top layer. *)

val nesting_ok : t -> bool
(** Every node's layer-[k+1] ring is a subset of its layer-[k] ring (checked
    over order strings via threshold refinement) — the invariant hierarchical
    routing relies on. *)

val mean_ring_link_latency : t -> layer:int -> samples:int -> Prng.Rng.t -> float
(** Monte-Carlo mean latency between two random members of the same ring at
    the given layer (diagnostic for "lower rings are tighter"). *)
