(** Hierarchical HIERAS routing (paper §3.2) with per-layer accounting.

    A lookup runs [depth] Chord loops: first inside the originator's most
    local ring using that ring's finger table, stopping at the ring member
    whose identifier is closest to the key (its ring-level successor); if
    that member is not the key's global owner the procedure climbs one layer
    and repeats, finishing — at the latest — on the global ring, where
    Chord's guarantee applies. Ring nesting (see {!Hnetwork}) ensures every
    intermediate node of a layer-[k] loop owns a finger table for that very
    ring.

    Each hop is tagged with the layer whose finger table chose it; Figures
    4–7 of the paper are computed from exactly this decomposition. *)

type hop = { from_node : int; to_node : int; latency : float; layer : int }

type result = {
  origin : int;
  key : Hashid.Id.t;
  destination : int;
  hops : hop list;  (** in travel order *)
  hop_count : int;
  latency : float;  (** ms, total *)
  hops_per_layer : int array;  (** index 0 = layer 1 (global) ... *)
  latency_per_layer : float array;
  finished_at_layer : int;
      (** the layer whose loop reached the global owner (depth = most local;
          1 = needed the global ring) *)
}

val route : ?trace:Obs.Trace.t -> Hnetwork.t -> origin:int -> key:Hashid.Id.t -> result
(** [trace] (default {!Obs.Trace.disabled}) receives one start event, one hop
    event per traversed edge — tagged with the layer whose finger table chose
    it — and one end event mirroring the returned accounting; when disabled
    the instrumentation costs one branch per hop and allocates nothing. *)

val route_hops_only :
  ?into:int array -> Hnetwork.t -> origin:int -> key:Hashid.Id.t -> int * int array * int * int
(** The analytic mode: [(hop_count, hops_per_layer, destination,
    finished_at_layer)] of exactly the walk {!route} performs — same hop
    sequence, same early exits — but touching only the packed structure: no
    latency oracle, no trace, no per-hop allocation. [into], when given
    (length >= depth), is zeroed and used as the per-layer accumulator
    instead of allocating one per call; the returned array is [into]
    itself, so callers reusing a scratch must consume it before the next
    call. Cross-validated against {!route} by tests and the scale
    experiment. *)

val route_checked : ?trace:Obs.Trace.t -> Hnetwork.t -> origin:int -> key:Hashid.Id.t -> result
(** Like {!route} but asserts the destination equals the Chord owner of the
    key — used by tests; routing correctness must never depend on binning
    quality. *)

(** {2 Failure-aware routing}

    Hierarchical analogue of {!Chord.Lookup.route_resilient}, with one
    extra recovery move: when a lower-ring walk finds [succ_window]
    consecutive dead ring successors it declares the ring locally
    partitioned, emits a [Layer_escape] trace event and climbs to the
    next layer immediately instead of stalling — a lower ring can never
    fail a lookup, only the global ring can. Ring-finger probes follow
    the policy's timeout/backoff schedule (tagged with the ring's layer);
    the between-layer early exit and the final global loop consult live
    successor-list entries like the flat walk does. *)

type attempt = {
  outcome : result option;
      (** [None] only when the {e global} loop stalled; [latency] includes
          [penalty_ms] while [latency_per_layer] attributes link latency
          only. *)
  retries : int;  (** timed-out contact attempts (= [Retry] events) *)
  timeouts : int;  (** distinct dead contacts probed to exhaustion *)
  fallbacks : int;  (** dead contacts abandoned for a secondary choice *)
  layer_escapes : int;  (** early climbs out of partitioned rings *)
  penalty_ms : float;  (** total timeout + backoff latency charged *)
}

val route_resilient :
  ?trace:Obs.Trace.t ->
  ?policy:Chord.Lookup.policy ->
  Hnetwork.t ->
  is_alive:(int -> bool) ->
  origin:int ->
  key:Hashid.Id.t ->
  attempt
(** The origin must be alive (raises [Invalid_argument] otherwise; also on
    an ill-formed policy). When every node is alive the walk, the trace
    stream and the returned [result] are identical to {!route}'s. On a
    stalled lookup the trace [End] event reports the stall position, so
    spans always close and stay auditable. *)
